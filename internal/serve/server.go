package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"time"
)

// Server is the kserve-style HTTP surface over the batcher and registry:
//
//	POST /v1/predict  {"instances":[[...], {"indices":[...],"values":[...]}, ...]}
//	POST /v1/proba    same body, returns class probabilities as well
//	GET  /healthz     serving readiness + current model metadata
//	GET  /metricz     flat text metrics (latency quantiles, counters)
//	POST /v1/reload   hot-swap the model via the configured reloader
//
// Dense instances are JSON arrays of Features numbers; sparse instances
// are {"indices":[...],"values":[...]} objects with strictly increasing
// zero-based indices. The two kinds may be mixed in one request.
type Server struct {
	reg    *Registry
	bat    *Batcher
	reload func() (int64, error) // optional hot-reload hook
	mux    *http.ServeMux
	start  time.Time
}

// NewServer wires the HTTP surface. reload may be nil, which disables
// /v1/reload.
func NewServer(reg *Registry, bat *Batcher, reload func() (int64, error)) *Server {
	s := &Server{reg: reg, bat: bat, reload: reload, mux: http.NewServeMux(), start: time.Now()}
	s.mux.HandleFunc("/v1/predict", func(w http.ResponseWriter, r *http.Request) { s.handlePredict(w, r, false) })
	s.mux.HandleFunc("/v1/proba", func(w http.ResponseWriter, r *http.Request) { s.handlePredict(w, r, true) })
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/metricz", s.handleMetricz)
	s.mux.HandleFunc("/v1/reload", s.handleReload)
	return s
}

// Handler returns the root http.Handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Batcher returns the server's batcher (for stats and tests).
func (s *Server) Batcher() *Batcher { return s.bat }

type sparseInstance struct {
	Indices []int     `json:"indices"`
	Values  []float64 `json:"values"`
}

type predictRequest struct {
	Instances []json.RawMessage `json:"instances"`
}

type predictResponse struct {
	Predictions   []int       `json:"predictions"`
	Probabilities [][]float64 `json:"probabilities,omitempty"`
	ModelVersion  int64       `json:"model_version"`
}

type errorResponse struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorResponse{Error: fmt.Sprintf(format, args...)})
}

// statusFor maps serving errors to HTTP statuses: backpressure is 429;
// missing model, shutdown, and mid-request hot-swap shape changes are
// 503 (transient — the request was valid when sent, retry succeeds);
// everything else is a 400-class request problem (bad shapes, bad
// indices).
func statusFor(err error) int {
	switch {
	case errors.Is(err, ErrQueueFull):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrNoModel), errors.Is(err, ErrClosed), errors.Is(err, ErrModelShapeChanged):
		return http.StatusServiceUnavailable
	default:
		return http.StatusBadRequest
	}
}

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request, proba bool) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	var req predictRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if len(req.Instances) == 0 {
		writeError(w, http.StatusBadRequest, "no instances")
		return
	}
	meta, ok := s.reg.Meta()
	if !ok {
		writeError(w, http.StatusServiceUnavailable, "no model loaded")
		return
	}

	resp := predictResponse{
		Predictions:  make([]int, len(req.Instances)),
		ModelVersion: meta.Version,
	}
	if proba {
		resp.Probabilities = make([][]float64, len(req.Instances))
		for i := range resp.Probabilities {
			resp.Probabilities[i] = make([]float64, meta.Classes)
		}
	}

	// Submit every instance before waiting on any, so the instances of
	// one HTTP request coalesce into the same micro-batches.
	tickets := make([]Ticket, 0, len(req.Instances))
	submitErr := error(nil)
	for i, raw := range req.Instances {
		var probaOut []float64
		if proba {
			probaOut = resp.Probabilities[i]
		}
		t, err := s.submitInstance(raw, probaOut)
		if err != nil {
			submitErr = fmt.Errorf("instance %d: %w", i, err)
			break
		}
		tickets = append(tickets, t)
	}
	var waitErr error
	for i, t := range tickets {
		class, err := t.Wait()
		if err != nil && waitErr == nil {
			waitErr = fmt.Errorf("instance %d: %w", i, err)
		}
		resp.Predictions[i] = class
	}
	if submitErr != nil {
		writeError(w, statusFor(submitErr), "%v", submitErr)
		return
	}
	if waitErr != nil {
		writeError(w, statusFor(waitErr), "%v", waitErr)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// submitInstance parses one instance (dense JSON array or sparse
// indices/values object) and enqueues it.
func (s *Server) submitInstance(raw json.RawMessage, probaOut []float64) (Ticket, error) {
	trimmed := firstByte(raw)
	switch trimmed {
	case '[':
		var row []float64
		if err := json.Unmarshal(raw, &row); err != nil {
			return Ticket{}, fmt.Errorf("bad dense instance: %w", err)
		}
		return s.bat.SubmitDense(row, probaOut)
	case '{':
		// Strict decoding: a typo'd key must be a 400, not a silently
		// all-zero row scored as the reference class.
		var sp sparseInstance
		dec := json.NewDecoder(bytes.NewReader(raw))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&sp); err != nil {
			return Ticket{}, fmt.Errorf("bad sparse instance: %w", err)
		}
		if sp.Indices == nil || sp.Values == nil {
			return Ticket{}, fmt.Errorf("sparse instance needs both \"indices\" and \"values\"")
		}
		return s.bat.SubmitCSR(sp.Indices, sp.Values, probaOut)
	default:
		return Ticket{}, fmt.Errorf("instance must be an array or an {indices, values} object")
	}
}

func firstByte(raw json.RawMessage) byte {
	for _, c := range raw {
		switch c {
		case ' ', '\t', '\n', '\r':
			continue
		}
		return c
	}
	return 0
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	meta, ok := s.reg.Meta()
	if !ok {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{"status": "no model"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":         "ok",
		"model":          meta,
		"uptime_seconds": time.Since(s.start).Seconds(),
	})
}

func (s *Server) handleMetricz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	st := s.bat.Stats()
	fmt.Fprintf(w, "serve_requests_submitted %d\n", st.Submitted)
	fmt.Fprintf(w, "serve_requests_rejected %d\n", st.Rejected)
	fmt.Fprintf(w, "serve_requests_completed %d\n", st.Completed)
	fmt.Fprintf(w, "serve_batches %d\n", st.Batches)
	if st.Batches > 0 {
		fmt.Fprintf(w, "serve_batch_rows_mean %.2f\n", float64(st.Completed)/float64(st.Batches))
	}
	s.bat.Latency.WriteMetrics(w, "serve_request_latency")
	fmt.Fprintf(w, "serve_batch_size_p50 %d\n", int64(s.bat.BatchSize.Quantile(0.5)))
	fmt.Fprintf(w, "serve_batch_size_max %d\n", int64(s.bat.BatchSize.Max()))
	if meta, ok := s.reg.Meta(); ok {
		fmt.Fprintf(w, "serve_model_version %d\n", meta.Version)
		if p, rel, err := s.reg.AcquirePredictor(); err == nil {
			ds := p.Device().Stats()
			rel()
			fmt.Fprintf(w, "serve_device_launches %d\n", ds.Launches)
			fmt.Fprintf(w, "serve_device_flops %d\n", ds.FLOPs)
			fmt.Fprintf(w, "serve_device_bytes %d\n", ds.Bytes)
		}
	}
	fmt.Fprintf(w, "serve_uptime_seconds %.3f\n", time.Since(s.start).Seconds())
	fmt.Fprintf(w, "serve_goroutines %d\n", runtime.NumGoroutine())
}

func (s *Server) handleReload(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	if s.reload == nil {
		writeError(w, http.StatusNotImplemented, "no reloader configured (start the server with a model path)")
		return
	}
	version, err := s.reload()
	if err != nil {
		writeError(w, http.StatusInternalServerError, "reload failed: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"status": "reloaded", "model_version": version})
}
