package serve

import (
	"math"
	"math/rand"
	"testing"

	"newtonadmm/internal/device"
	"newtonadmm/internal/linalg"
)

var testDev = device.New("serve-test", 2)

// makePredictor builds a predictor with random weights on the shared
// test device.
func makePredictor(t testing.TB, classes, features int, seed int64) *Predictor {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	w := make([]float64, (classes-1)*features)
	for i := range w {
		w[i] = rng.NormFloat64()
	}
	p, err := NewPredictorOn(testDev, w, classes, features)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// randRows generates dense rows; density < 1 zeroes entries (so the CSR
// twins have real sparsity patterns).
func randRows(rng *rand.Rand, n, features int, density float64) [][]float64 {
	rows := make([][]float64, n)
	for i := range rows {
		rows[i] = make([]float64, features)
		for j := range rows[i] {
			if density >= 1 || rng.Float64() < density {
				rows[i][j] = rng.NormFloat64()
			}
		}
	}
	return rows
}

// toCSRRows converts dense rows to (indices, values) form.
func toCSRRows(rows [][]float64) ([][]int, [][]float64) {
	idx := make([][]int, len(rows))
	val := make([][]float64, len(rows))
	for i, r := range rows {
		for j, v := range r {
			if v != 0 {
				idx[i] = append(idx[i], j)
				val[i] = append(val[i], v)
			}
		}
	}
	return idx, val
}

// referenceClass scores one row serially: argmax over explicit class
// scores with the zero-score reference class winning ties.
func referenceClass(w []float64, classes int, row []float64) int {
	p := len(row)
	best, bestScore := classes-1, 0.0
	for c := 0; c < classes-1; c++ {
		s := linalg.Dot(row, w[c*p:(c+1)*p])
		if s > bestScore {
			best, bestScore = c, s
		}
	}
	return best
}

func TestPredictorValidation(t *testing.T) {
	if _, err := NewPredictorOn(testDev, make([]float64, 10), 1, 10); err == nil {
		t.Fatal("classes=1 accepted")
	}
	if _, err := NewPredictorOn(testDev, make([]float64, 10), 3, 0); err == nil {
		t.Fatal("features=0 accepted")
	}
	if _, err := NewPredictorOn(testDev, make([]float64, 7), 3, 4); err == nil {
		t.Fatal("mis-sized weights accepted")
	}

	p := makePredictor(t, 3, 5, 1)
	out := make([]int, 4)
	if err := p.PredictDense([][]float64{{1, 2}}, out); err == nil {
		t.Fatal("short row accepted")
	}
	if err := p.PredictDense([][]float64{{1, 2, 3, 4, 5}}, out[:0]); err == nil {
		t.Fatal("short output accepted")
	}
	if err := p.PredictCSR([][]int{{0, 0}}, [][]float64{{1, 1}}, out); err == nil {
		t.Fatal("duplicate indices accepted")
	}
	if err := p.PredictCSR([][]int{{3, 1}}, [][]float64{{1, 1}}, out); err == nil {
		t.Fatal("descending indices accepted")
	}
	if err := p.PredictCSR([][]int{{5}}, [][]float64{{1}}, out); err == nil {
		t.Fatal("out-of-range index accepted")
	}
	if err := p.PredictCSR([][]int{{1}}, [][]float64{{1, 2}}, out); err == nil {
		t.Fatal("index/value length mismatch accepted")
	}
	if err := p.PredictCSR([][]int{{1}}, [][]float64{}, out); err == nil {
		t.Fatal("row count mismatch accepted")
	}
	if err := p.ProbaDense([][]float64{{1, 2, 3, 4, 5}}, make([]float64, 2)); err == nil {
		t.Fatal("short proba buffer accepted")
	}
}

func TestPredictDenseMatchesReference(t *testing.T) {
	const classes, features = 6, 17
	p := makePredictor(t, classes, features, 2)
	rng := rand.New(rand.NewSource(3))
	rows := randRows(rng, 41, features, 1)
	out := make([]int, len(rows))
	if err := p.PredictDense(rows, out); err != nil {
		t.Fatal(err)
	}
	for i, r := range rows {
		if want := referenceClass(p.weights, classes, r); out[i] != want {
			t.Fatalf("row %d: got class %d, want %d", i, out[i], want)
		}
	}
}

func TestPredictCSRMatchesDense(t *testing.T) {
	const classes, features = 5, 23
	p := makePredictor(t, classes, features, 4)
	rng := rand.New(rand.NewSource(5))
	rows := randRows(rng, 37, features, 0.3)
	idx, val := toCSRRows(rows)

	dOut := make([]int, len(rows))
	sOut := make([]int, len(rows))
	if err := p.PredictDense(rows, dOut); err != nil {
		t.Fatal(err)
	}
	if err := p.PredictCSR(idx, val, sOut); err != nil {
		t.Fatal(err)
	}
	for i := range rows {
		if dOut[i] != sOut[i] {
			t.Fatalf("row %d: dense %d vs CSR %d", i, dOut[i], sOut[i])
		}
	}
}

func TestProbaMatchesPredictAndSumsToOne(t *testing.T) {
	const classes, features = 4, 11
	p := makePredictor(t, classes, features, 6)
	rng := rand.New(rand.NewSource(7))
	rows := randRows(rng, 19, features, 0.5)
	idx, val := toCSRRows(rows)

	classesOut := make([]int, len(rows))
	if err := p.PredictDense(rows, classesOut); err != nil {
		t.Fatal(err)
	}
	dProbs := make([]float64, len(rows)*classes)
	if err := p.ProbaDense(rows, dProbs); err != nil {
		t.Fatal(err)
	}
	sProbs := make([]float64, len(rows)*classes)
	if err := p.ProbaCSR(idx, val, sProbs); err != nil {
		t.Fatal(err)
	}
	for i := range rows {
		row := dProbs[i*classes : (i+1)*classes]
		var sum float64
		for _, v := range row {
			sum += v
		}
		if math.Abs(sum-1) > 1e-12 {
			t.Fatalf("row %d probabilities sum to %v", i, sum)
		}
		if got := ArgmaxProba(row); got != classesOut[i] {
			t.Fatalf("row %d: proba argmax %d, predict %d", i, got, classesOut[i])
		}
		for c := 0; c < classes; c++ {
			if dProbs[i*classes+c] != sProbs[i*classes+c] {
				t.Fatalf("row %d class %d: dense %v vs CSR %v", i, c, dProbs[i*classes+c], sProbs[i*classes+c])
			}
		}
	}
}

func TestPredictorEmptyBatch(t *testing.T) {
	p := makePredictor(t, 3, 5, 8)
	if err := p.PredictDense(nil, nil); err != nil {
		t.Fatal(err)
	}
	if err := p.PredictCSR(nil, nil, nil); err != nil {
		t.Fatal(err)
	}
	if err := p.ProbaDense(nil, nil); err != nil {
		t.Fatal(err)
	}
}

// TestPredictorZeroAllocsSteadyState pins the acceptance criterion: once
// staging is warm, the predictor hot path allocates nothing per batch.
func TestPredictorZeroAllocsSteadyState(t *testing.T) {
	const classes, features = 6, 32
	p := makePredictor(t, classes, features, 9)
	rng := rand.New(rand.NewSource(10))
	rows := randRows(rng, 16, features, 0.4)
	idx, val := toCSRRows(rows)
	out := make([]int, len(rows))
	probs := make([]float64, len(rows)*classes)

	if allocs := testing.AllocsPerRun(20, func() {
		if err := p.PredictDense(rows, out); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Errorf("PredictDense allocates %v per batch in steady state, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(20, func() {
		if err := p.PredictCSR(idx, val, out); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Errorf("PredictCSR allocates %v per batch in steady state, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(20, func() {
		if err := p.ProbaDense(rows, probs); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Errorf("ProbaDense allocates %v per batch in steady state, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(20, func() {
		if err := p.ProbaCSR(idx, val, probs); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Errorf("ProbaCSR allocates %v per batch in steady state, want 0", allocs)
	}
}

func TestArgmaxProbaTieBreaking(t *testing.T) {
	// Reference class (last) wins exact ties; earliest explicit class
	// wins ties among explicit classes — matching loss.PredictInto.
	if got := ArgmaxProba([]float64{0.25, 0.25, 0.25, 0.25}); got != 3 {
		t.Fatalf("all-tied: got %d, want reference class 3", got)
	}
	if got := ArgmaxProba([]float64{0.3, 0.3, 0.2, 0.2}); got != 0 {
		t.Fatalf("explicit tie: got %d, want 0", got)
	}
	if got := ArgmaxProba([]float64{0.1, 0.5, 0.2, 0.2}); got != 1 {
		t.Fatalf("got %d, want 1", got)
	}
}
