package serve

import (
	"encoding/json"
	"math/rand"
	"net/http"
	"testing"
	"time"

	"newtonadmm/internal/loss"
)

// TestScoresMatchPredict pins the partial-logit surface to the predict
// path: applying the merge kernels to ScoresDense/ScoresCSR output
// reproduces PredictDense/PredictCSR and ProbaDense bitwise.
func TestScoresMatchPredict(t *testing.T) {
	const classes, features = 5, 17
	p := makePredictor(t, classes, features, 50)
	rng := rand.New(rand.NewSource(51))
	rows := randRows(rng, 9, features, 0.5)
	idx, val := toCSRRows(rows)
	m := classes - 1

	scores := make([]float64, len(rows)*m)
	if err := p.ScoresDense(rows, scores); err != nil {
		t.Fatal(err)
	}
	gotPred := make([]int, len(rows))
	loss.PredictFromScores(scores, len(rows), classes, gotPred)
	wantPred := make([]int, len(rows))
	if err := p.PredictDense(rows, wantPred); err != nil {
		t.Fatal(err)
	}
	for i := range wantPred {
		if gotPred[i] != wantPred[i] {
			t.Fatalf("row %d: scores argmax %d, PredictDense %d", i, gotPred[i], wantPred[i])
		}
	}

	gotProba := make([]float64, len(rows)*classes)
	loss.ProbaFromScores(scores, len(rows), classes, gotProba)
	wantProba := make([]float64, len(rows)*classes)
	if err := p.ProbaDense(rows, wantProba); err != nil {
		t.Fatal(err)
	}
	for i := range wantProba {
		if gotProba[i] != wantProba[i] {
			t.Fatalf("proba[%d]: from scores %v, ProbaDense %v", i, gotProba[i], wantProba[i])
		}
	}

	csrScores := make([]float64, len(rows)*m)
	if err := p.ScoresCSR(idx, val, csrScores); err != nil {
		t.Fatal(err)
	}
	for i := range scores {
		if csrScores[i] != scores[i] {
			t.Fatalf("scores[%d]: CSR %v, dense %v", i, csrScores[i], scores[i])
		}
	}

	if err := p.ScoresDense(rows, make([]float64, 1)); err == nil {
		t.Fatal("short score buffer accepted")
	}
}

// TestServerScoresEndpoint exercises the /v1/scores data plane: mixed
// dense+sparse instances come back as raw partial logits in request
// order, bit-exact through the JSON round trip, with the snapshot
// version.
func TestServerScoresEndpoint(t *testing.T) {
	const classes, features = 4, 6
	ts, p, done := newTestServer(t, classes, features)
	defer done()

	rng := rand.New(rand.NewSource(52))
	rows := randRows(rng, 6, features, 0.6)
	idx, val := toCSRRows(rows)
	m := classes - 1
	want := make([]float64, len(rows)*m)
	if err := p.ScoresDense(rows, want); err != nil {
		t.Fatal(err)
	}

	instances := []any{}
	for i, r := range rows {
		if i%2 == 0 {
			instances = append(instances, r)
		} else {
			instances = append(instances, map[string]any{"indices": idx[i], "values": val[i]})
		}
	}
	resp, body := postJSON(t, ts.URL+"/v1/scores", map[string]any{"instances": instances})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var sr struct {
		Scores       [][]float64 `json:"scores"`
		Cols         int         `json:"cols"`
		ModelVersion int64       `json:"model_version"`
	}
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.Cols != m || sr.ModelVersion != 1 {
		t.Fatalf("cols %d version %d, want %d and 1", sr.Cols, sr.ModelVersion, m)
	}
	if len(sr.Scores) != len(rows) {
		t.Fatalf("%d score rows for %d instances", len(sr.Scores), len(rows))
	}
	for i, row := range sr.Scores {
		for c, v := range row {
			if v != want[i*m+c] { // bitwise through JSON
				t.Fatalf("scores[%d][%d]: got %v want %v", i, c, v, want[i*m+c])
			}
		}
	}

	// Malformed instance is a 400; empty body is a 400.
	resp, _ = postJSON(t, ts.URL+"/v1/scores", map[string]any{"instances": []any{"nope"}})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad instance gave %d, want 400", resp.StatusCode)
	}
	resp, _ = postJSON(t, ts.URL+"/v1/scores", map[string]any{"instances": []any{}})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty instances gave %d, want 400", resp.StatusCode)
	}
}

// TestBatcherDrain checks the drain hook: after Drain returns, every
// previously accepted request has been answered.
func TestBatcherDrain(t *testing.T) {
	p := makePredictor(t, 3, 8, 53)
	reg := NewRegistry()
	reg.Swap(p, ModelMeta{})
	bat := NewBatcher(reg, BatcherConfig{MaxBatch: 4, MaxLinger: 200 * time.Microsecond, QueueDepth: 64})
	defer bat.Close()

	row := make([]float64, 8)
	tickets := make([]Ticket, 0, 32)
	for i := 0; i < 32; i++ {
		tk, err := bat.SubmitDense(row, nil)
		if err != nil {
			t.Fatal(err)
		}
		tickets = append(tickets, tk)
	}
	bat.Drain()
	if got := bat.InFlight(); got != 0 {
		t.Fatalf("InFlight %d after Drain", got)
	}
	st := bat.Stats()
	if st.Completed != st.Submitted {
		t.Fatalf("completed %d != submitted %d after Drain", st.Completed, st.Submitted)
	}
	for _, tk := range tickets {
		if _, err := tk.Wait(); err != nil {
			t.Fatal(err)
		}
	}
}
