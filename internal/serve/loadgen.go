package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"newtonadmm/internal/control"
	"newtonadmm/internal/metrics"
)

// Target is what the load generator drives: the in-process Batcher
// implements it directly, HTTPTarget drives a live server over the wire.
type Target interface {
	Predict(row []float64) (int, error)
}

// ProbaTarget is the probability-mode surface: Proba fills out (length
// Classes) with the row's class probabilities and returns the predicted
// class. The in-process Batcher and HTTPTarget both implement it, so
// predict-vs-proba and router-vs-single-node comparisons run through one
// generator.
type ProbaTarget interface {
	Target
	Proba(row []float64, out []float64) (int, error)
}

// LoadConfig configures a load-generation run. The generator is
// deterministic given the same rows, config, and target behavior: closed
// loop walks the row set in a fixed per-worker stride, open loop fires
// on a fixed schedule.
type LoadConfig struct {
	// Mode is "closed" (Concurrency workers in submit-wait loops; the
	// classic throughput probe) or "open" (requests fired at Rate per
	// second regardless of completions; the latency-under-load probe).
	Mode string
	// Concurrency is the closed-loop worker count and the open-loop
	// outstanding-request cap; <= 0 selects 32.
	Concurrency int
	// Rate is the open-loop arrival rate in requests/second (required
	// for open mode).
	Rate float64
	// Duration is the measured window; <= 0 selects 3s.
	Duration time.Duration
	// Warmup runs the same traffic before measurement starts (scratch
	// buffers grow, batches form) without recording; <= 0 selects 10% of
	// Duration.
	Warmup time.Duration
	// SampleEvery thins closed-loop latency recording to one request in
	// SampleEvery per worker (<= 1 records every request). Throughput
	// counts every request either way; at millions of requests per run
	// the sampled quantiles are statistically indistinguishable while
	// the measurement loop stays off the clock for the rest — the same
	// discipline the batcher applies to its own /metricz histogram.
	SampleEvery int
	// Proba switches every request to the probability path: the target
	// must implement ProbaTarget and Classes must be the model's class
	// count (sizes the per-worker probability buffer).
	Proba   bool
	Classes int
	// Seed seeds the open-loop row picker explicitly, so a run can be
	// replayed bit-for-bit: same rows + same Seed = same request
	// sequence. <= 0 selects 1 — the generator never falls back to an
	// unseeded (time-derived) source. Closed loop needs no RNG: each
	// worker walks the row set in a fixed stride.
	Seed int64
}

func (c LoadConfig) withDefaults() LoadConfig {
	if c.Mode == "" {
		c.Mode = "closed"
	}
	if c.Concurrency <= 0 {
		c.Concurrency = 32
	}
	if c.Duration <= 0 {
		c.Duration = 3 * time.Second
	}
	if c.Warmup <= 0 {
		c.Warmup = c.Duration / 10
	}
	if c.SampleEvery < 1 {
		c.SampleEvery = 1
	}
	if c.Seed <= 0 {
		c.Seed = 1
	}
	return c
}

// LoadResult is the report of one load-generation run.
type LoadResult struct {
	Mode        string
	Concurrency int
	Duration    time.Duration
	Done        int64 // successful predictions in the measured window
	Rejected    int64 // 429-class responses, all reasons (backpressure)
	Errors      int64 // other errors
	Shed        int64 // open loop only: arrivals skipped at the outstanding cap
	Throughput  float64
	Latency     metrics.Snapshot

	// Rejected broken down by the server's machine-readable reason.
	// RejectedQueueFull + RejectedRateLimited + RejectedCost == Rejected
	// (legacy servers that send a bare 429 count as queue_full).
	RejectedQueueFull   int64
	RejectedRateLimited int64
	RejectedCost        int64
}

func (r LoadResult) String() string {
	l := r.Latency
	s := fmt.Sprintf("%s c=%d: %.0f req/s (%d ok, %d rejected, %d errors, %d shed) latency p50=%v p95=%v p99=%v max=%v",
		r.Mode, r.Concurrency, r.Throughput, r.Done, r.Rejected, r.Errors, r.Shed, l.P50, l.P95, l.P99, l.Max)
	if r.RejectedRateLimited > 0 || r.RejectedCost > 0 {
		s += fmt.Sprintf(" rejects[queue_full=%d rate_limited=%d cost_rejected=%d]",
			r.RejectedQueueFull, r.RejectedRateLimited, r.RejectedCost)
	}
	return s
}

// RunLoad drives target with the given rows and returns the measured
// throughput and latency distribution.
func RunLoad(target Target, rows [][]float64, cfg LoadConfig) (LoadResult, error) {
	cfg = cfg.withDefaults()
	if len(rows) == 0 {
		return LoadResult{}, errors.New("serve: load generator needs at least one row")
	}
	if cfg.Proba {
		if _, ok := target.(ProbaTarget); !ok {
			return LoadResult{}, errors.New("serve: probability mode needs a ProbaTarget")
		}
		if cfg.Classes < 2 {
			return LoadResult{}, errors.New("serve: probability mode needs Classes >= 2")
		}
	}
	switch cfg.Mode {
	case "closed":
		return runClosedLoop(target, rows, cfg), nil
	case "open":
		if cfg.Rate <= 0 {
			return LoadResult{}, errors.New("serve: open-loop mode needs Rate > 0")
		}
		return runOpenLoop(target, rows, cfg), nil
	default:
		return LoadResult{}, fmt.Errorf("serve: unknown load mode %q (want closed or open)", cfg.Mode)
	}
}

type loadCounters struct {
	done, rejected, errs atomic.Int64
	rejects              control.RejectStats // per-reason breakdown of rejected
	hist                 *metrics.Histogram
}

func (c *loadCounters) noteReject(err error) {
	c.rejected.Add(1)
	reason, _, ok := RejectionOf(err)
	if !ok {
		reason = control.ReasonQueueFull
	}
	c.rejects.Note(reason)
}

func (c *loadCounters) record(start time.Time, err error, measuring bool) {
	if !measuring {
		return
	}
	switch {
	case err == nil:
		c.done.Add(1)
		c.hist.Observe(time.Since(start))
	case errors.Is(err, ErrQueueFull):
		c.noteReject(err)
	default:
		c.errs.Add(1)
	}
}

// caller returns the request function one worker drives: Predict, or
// Proba into a worker-private probability buffer when cfg.Proba is set
// (RunLoad has already validated the target and class count).
func caller(target Target, cfg LoadConfig) func(row []float64) (int, error) {
	if !cfg.Proba {
		return target.Predict
	}
	pt := target.(ProbaTarget)
	out := make([]float64, cfg.Classes)
	return func(row []float64) (int, error) { return pt.Proba(row, out) }
}

// recordFast counts an unsampled request (no clock, no histogram).
func (c *loadCounters) recordFast(err error, measuring bool) {
	if !measuring {
		return
	}
	switch {
	case err == nil:
		c.done.Add(1)
	case errors.Is(err, ErrQueueFull):
		c.noteReject(err)
	default:
		c.errs.Add(1)
	}
}

// fill copies the counter totals into a result.
func (c *loadCounters) fill(res *LoadResult) {
	res.Done = c.done.Load()
	res.Rejected = c.rejected.Load()
	res.Errors = c.errs.Load()
	res.RejectedQueueFull = int64(c.rejects.Count(control.ReasonQueueFull))
	res.RejectedRateLimited = int64(c.rejects.Count(control.ReasonRateLimited))
	res.RejectedCost = int64(c.rejects.Count(control.ReasonCostRejected))
}

func runClosedLoop(target Target, rows [][]float64, cfg LoadConfig) LoadResult {
	ctr := &loadCounters{hist: metrics.NewHistogram()}
	warmupEnd := time.Now().Add(cfg.Warmup)
	var measureStart, measureEnd time.Time
	deadline := warmupEnd.Add(cfg.Duration)

	var startOnce sync.Once
	var wg sync.WaitGroup
	for w := 0; w < cfg.Concurrency; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			call := caller(target, cfg)
			i := worker // fixed stride walk: deterministic row sequence per worker
			for {
				// Block head: the one fully timed request. Its clock read
				// doubles as the deadline and warmup-phase check for the
				// whole block (overshoot is bounded by SampleEvery-1).
				t0 := time.Now()
				if t0.After(deadline) {
					return
				}
				measuring := t0.After(warmupEnd)
				if measuring {
					startOnce.Do(func() { measureStart = t0 })
				}
				row := rows[i%len(rows)]
				i += cfg.Concurrency
				_, err := call(row)
				ctr.record(t0, err, measuring)
				// Block tail: counted but not clocked.
				for j := 1; j < cfg.SampleEvery; j++ {
					row = rows[i%len(rows)]
					i += cfg.Concurrency
					_, err = call(row)
					ctr.recordFast(err, measuring)
				}
			}
		}(w)
	}
	wg.Wait()
	measureEnd = time.Now()

	res := LoadResult{
		Mode: "closed", Concurrency: cfg.Concurrency,
		Latency: ctr.hist.Snapshot(),
	}
	ctr.fill(&res)
	if measureStart.IsZero() {
		measureStart = warmupEnd
	}
	res.Duration = measureEnd.Sub(measureStart)
	if res.Duration > 0 {
		res.Throughput = float64(res.Done) / res.Duration.Seconds()
	}
	return res
}

func runOpenLoop(target Target, rows [][]float64, cfg LoadConfig) LoadResult {
	ctr := &loadCounters{hist: metrics.NewHistogram()}
	// Explicitly seeded row picker (cfg.Seed): the arrival schedule is
	// already deterministic, so the seed makes the whole request
	// sequence replayable.
	rng := rand.New(rand.NewSource(cfg.Seed))
	var shed atomic.Int64
	interval := time.Duration(float64(time.Second) / cfg.Rate)
	if interval <= 0 {
		interval = time.Nanosecond
	}
	warmupEnd := time.Now().Add(cfg.Warmup)
	deadline := warmupEnd.Add(cfg.Duration)

	// Outstanding-request cap: an overloaded target sheds arrivals here
	// instead of accumulating unbounded goroutines (counted, not hidden).
	sem := make(chan struct{}, cfg.Concurrency)
	var wg sync.WaitGroup
	next := time.Now()
	for {
		now := time.Now()
		if now.After(deadline) {
			break
		}
		if wait := next.Sub(now); wait > 0 {
			time.Sleep(wait)
		}
		measuring := time.Now().After(warmupEnd)
		row := rows[rng.Intn(len(rows))]
		next = next.Add(interval)
		select {
		case sem <- struct{}{}:
			wg.Add(1)
			go func(row []float64) {
				defer wg.Done()
				// Per-request caller: concurrent open-loop goroutines
				// cannot share one probability buffer.
				t0 := time.Now()
				_, err := caller(target, cfg)(row)
				ctr.record(t0, err, measuring)
				<-sem
			}(row)
		default:
			if measuring {
				shed.Add(1)
			}
		}
	}
	wg.Wait()

	res := LoadResult{
		Mode: "open", Concurrency: cfg.Concurrency,
		Shed:     shed.Load(),
		Latency:  ctr.hist.Snapshot(),
		Duration: cfg.Duration,
	}
	ctr.fill(&res)
	if res.Duration > 0 {
		res.Throughput = float64(res.Done) / res.Duration.Seconds()
	}
	return res
}

// PriorityTarget drives an in-process batcher under a fixed service
// class, so mixed-priority load runs compose from one generator per
// class (the starvation-bound tests and nadmm-bench's mixed row).
type PriorityTarget struct {
	B        *Batcher
	Priority control.Priority
}

// Predict submits the row under the wrapper's class and waits.
func (t *PriorityTarget) Predict(row []float64) (int, error) {
	tk, err := t.B.SubmitDensePri(row, nil, t.Priority, nil)
	if err != nil {
		return 0, err
	}
	return tk.Wait()
}

// Proba is Predict with class probabilities into out.
func (t *PriorityTarget) Proba(row []float64, out []float64) (int, error) {
	tk, err := t.B.SubmitDensePri(row, out, t.Priority, nil)
	if err != nil {
		return 0, err
	}
	return tk.Wait()
}

// HTTPTarget drives a live nadmm-serve endpoint: each Predict posts one
// dense instance to <base>/v1/predict.
type HTTPTarget struct {
	Base   string // e.g. "http://127.0.0.1:8080"
	Client *http.Client
	// Priority, when non-empty, is sent as the X-Nadmm-Priority header
	// on every request ("interactive", "batch", "background").
	Priority string
}

// Predict posts the row and returns the predicted class.
func (t *HTTPTarget) Predict(row []float64) (int, error) {
	pr, err := t.post("/v1/predict", row)
	if err != nil {
		return 0, err
	}
	return pr.Predictions[0], nil
}

// Proba posts the row to /v1/proba, copies the class probabilities into
// out, and returns the predicted class.
func (t *HTTPTarget) Proba(row []float64, out []float64) (int, error) {
	pr, err := t.post("/v1/proba", row)
	if err != nil {
		return 0, err
	}
	if len(pr.Probabilities) != 1 {
		return 0, fmt.Errorf("serve: got %d probability rows for 1 instance", len(pr.Probabilities))
	}
	if len(pr.Probabilities[0]) != len(out) {
		return 0, fmt.Errorf("serve: got %d probabilities, buffer has %d", len(pr.Probabilities[0]), len(out))
	}
	copy(out, pr.Probabilities[0])
	return pr.Predictions[0], nil
}

// post sends one single-instance request and decodes the response.
func (t *HTTPTarget) post(path string, row []float64) (predictResponse, error) {
	var pr predictResponse
	body, err := json.Marshal(map[string]any{"instances": []any{row}})
	if err != nil {
		return pr, err
	}
	client := t.Client
	if client == nil {
		client = http.DefaultClient
	}
	req, err := http.NewRequest(http.MethodPost, t.Base+path, bytes.NewReader(body))
	if err != nil {
		return pr, err
	}
	req.Header.Set("Content-Type", "application/json")
	if t.Priority != "" {
		req.Header.Set(PriorityHeader, t.Priority)
	}
	resp, err := client.Do(req)
	if err != nil {
		return pr, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusTooManyRequests {
		return pr, rejectionFrom429(resp)
	}
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return pr, fmt.Errorf("serve: HTTP %d: %s", resp.StatusCode, bytes.TrimSpace(b))
	}
	if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
		return pr, err
	}
	if len(pr.Predictions) != 1 {
		return pr, fmt.Errorf("serve: got %d predictions for 1 instance", len(pr.Predictions))
	}
	return pr, nil
}

// rejectionFrom429 reconstructs the server's admission rejection from a
// 429 response: the machine-readable reason from the JSON body and the
// retry hint from the Retry-After header. A bare 429 (legacy server)
// maps to the plain queue-full sentinel.
func rejectionFrom429(resp *http.Response) error {
	var er errorResponse
	if err := json.NewDecoder(io.LimitReader(resp.Body, 4096)).Decode(&er); err != nil || er.Reason == "" {
		io.Copy(io.Discard, resp.Body)
		return ErrQueueFull
	}
	io.Copy(io.Discard, resp.Body)
	re := &RejectionError{Reason: control.ParseReason(er.Reason)}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		if secs, err := strconv.Atoi(ra); err == nil && secs > 0 {
			re.RetryAfter = time.Duration(secs) * time.Second
		}
	}
	return re
}
