package serve

import (
	"errors"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"newtonadmm/internal/control"
)

// rejectAll is a policy that refuses everything.
type rejectAll struct{}

func (rejectAll) Name() string { return "reject-all" }
func (rejectAll) Admit(int64, control.Priority) control.Decision {
	return control.Decision{Reason: control.ReasonRateLimited, RetryAfter: time.Second}
}

// TestBatcherPolicyRejectNoPublish: a policy rejection takes no queue
// slot and publishes no state — Submitted stays zero, queues stay
// empty, and the error is the typed 429 with reason and retry hint.
func TestBatcherPolicyRejectNoPublish(t *testing.T) {
	f := &fakeScorer{classes: 3, features: 4}
	b := NewBatcher(fakeSource{s: f}, BatcherConfig{MaxBatch: 4, MaxLinger: -1, QueueDepth: 8})
	defer b.Close()
	b.SetPolicy(rejectAll{})

	row := []float64{1, 2, 3, 4}
	for i := 0; i < 10; i++ {
		_, err := b.SubmitDense(row, nil)
		if !errors.Is(err, ErrQueueFull) {
			t.Fatalf("policy reject is not in the ErrQueueFull class: %v", err)
		}
		reason, retry, ok := RejectionOf(err)
		if !ok || reason != control.ReasonRateLimited || retry != time.Second {
			t.Fatalf("RejectionOf = (%v, %v, %v), want (rate_limited, 1s, true)", reason, retry, ok)
		}
	}
	st := b.Stats()
	if st.Submitted != 0 {
		t.Fatalf("rejected requests published Submitted=%d, must be 0", st.Submitted)
	}
	if st.Rejected != 10 {
		t.Fatalf("Rejected = %d, want 10", st.Rejected)
	}
	if b.AdmissionStats().Count(control.ReasonRateLimited) != 10 {
		t.Fatalf("reason counter = %d, want 10", b.AdmissionStats().Count(control.ReasonRateLimited))
	}
	for c := control.Priority(0); c < control.NumPriorities; c++ {
		if n := b.QueueLen(c); n != 0 {
			t.Fatalf("class %v queue holds %d rejected requests", c, n)
		}
	}
	// Open admission back up: the same batcher serves normally.
	b.SetPolicy(nil)
	if _, err := b.Predict(row); err != nil {
		t.Fatalf("predict after reopening admission: %v", err)
	}
}

// TestBatcherOverflowRejectNoPublish: a queue-overflow reject must not
// leak traces or stamps. SampleEvery=1 would publish a trace per
// accepted request; rejected ones must discard theirs.
func TestBatcherOverflowRejectNoPublish(t *testing.T) {
	f := &fakeScorer{classes: 3, features: 4, gate: make(chan struct{}), entered: make(chan struct{}, 16)}
	b := NewBatcher(fakeSource{s: f}, BatcherConfig{MaxBatch: 1, MaxLinger: -1, QueueDepth: 2, SampleEvery: 1})
	defer b.Close()
	row := []float64{1, 2, 3, 4}

	// First request reaches the (gated) scorer; the next two fill the
	// interactive queue.
	t1, err := b.SubmitDense(row, nil)
	if err != nil {
		t.Fatal(err)
	}
	<-f.entered
	var tickets []Ticket
	for i := 0; i < 2; i++ {
		tk, err := b.SubmitDense(row, nil)
		if err != nil {
			t.Fatalf("fill %d: %v", i, err)
		}
		tickets = append(tickets, tk)
	}
	// Queue full: overflow rejects, typed queue_full.
	var rejects int
	for i := 0; i < 5; i++ {
		if _, err := b.SubmitDense(row, nil); err != nil {
			if !errors.Is(err, ErrQueueFull) {
				t.Fatalf("overflow error: %v", err)
			}
			reason, _, _ := RejectionOf(err)
			if reason != control.ReasonQueueFull {
				t.Fatalf("overflow reason = %v, want queue_full", reason)
			}
			rejects++
		}
	}
	if rejects == 0 {
		t.Fatal("no overflow rejection with a full queue")
	}
	st := b.Stats()
	if st.Submitted != 3 {
		t.Fatalf("Submitted = %d, want exactly the 3 accepted", st.Submitted)
	}
	if b.AdmissionStats().Count(control.ReasonQueueFull) != uint64(rejects) {
		t.Fatalf("queue_full counter = %d, want %d", b.AdmissionStats().Count(control.ReasonQueueFull), rejects)
	}
	close(f.gate)
	if _, err := t1.Wait(); err != nil {
		t.Fatal(err)
	}
	for _, tk := range tickets {
		if _, err := tk.Wait(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestBatcherPolicySwapUnderLoad hammers the batcher while admission
// flips between open, a tight bucket, and closed — the -race pin for
// the atomic policy seam. Every outcome must be a success or a typed
// rejection, and the counters must account for every attempt.
func TestBatcherPolicySwapUnderLoad(t *testing.T) {
	f := &fakeScorer{classes: 3, features: 4}
	b := NewBatcher(fakeSource{s: f}, BatcherConfig{MaxBatch: 8, MaxLinger: 50 * time.Microsecond, QueueDepth: 64})
	defer b.Close()

	const workers = 6
	var ok, rejected atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			row := []float64{float64(w), 1, 2, 3}
			pri := control.Priority(w % control.NumPriorities)
			for {
				select {
				case <-stop:
					return
				default:
				}
				tk, err := b.SubmitDensePri(row, nil, pri, nil)
				if err != nil {
					if !errors.Is(err, ErrQueueFull) {
						t.Errorf("unexpected submit error: %v", err)
						return
					}
					rejected.Add(1)
					continue
				}
				if _, err := tk.Wait(); err != nil {
					t.Errorf("wait: %v", err)
					return
				}
				ok.Add(1)
			}
		}(w)
	}
	policies := []control.AdmissionPolicy{
		nil, control.NewTokenBucket(50, 1), control.AlwaysAdmit{}, rejectAll{}, control.NewCostPolicy(100, 10),
	}
	for i := 0; i < 200; i++ {
		b.SetPolicy(policies[i%len(policies)])
		time.Sleep(200 * time.Microsecond)
	}
	b.SetPolicy(nil)
	if b.Policy() != nil {
		t.Fatal("Policy() != nil after clearing")
	}
	close(stop)
	wg.Wait()
	st := b.Stats()
	if st.Submitted != ok.Load() {
		t.Fatalf("Submitted=%d but %d requests completed", st.Submitted, ok.Load())
	}
	if st.Rejected != rejected.Load() || b.AdmissionStats().Total() != uint64(rejected.Load()) {
		t.Fatalf("Rejected=%d reasons=%d callers saw %d", st.Rejected, b.AdmissionStats().Total(), rejected.Load())
	}
	if ok.Load() == 0 || rejected.Load() == 0 {
		t.Fatalf("load mix degenerate: ok=%d rejected=%d (want both nonzero)", ok.Load(), rejected.Load())
	}
}

// TestPriorityStarvationBound is the acceptance pin for the control
// plane: with a token-bucket policy and a background flood, interactive
// traffic within the refill rate sees ZERO rejections (background's
// half-burst reserve floor absorbs them all) and its latency stays
// bounded (the 16/4/1 weighted dequeue keeps it moving through the
// flood).
func TestPriorityStarvationBound(t *testing.T) {
	f := &fakeScorer{classes: 3, features: 4}
	b := NewBatcher(fakeSource{s: f}, BatcherConfig{MaxBatch: 8, MaxLinger: -1, QueueDepth: 64})
	defer b.Close()
	// Refill 2000/s, burst 50: background refused once the bucket dips
	// under 25 tokens; interactive may drain to zero.
	b.SetPolicy(control.NewTokenBucket(2000, 50))

	stop := make(chan struct{})
	var bgRejected, bgOK atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			row := []float64{9, 9, 9, 9}
			for {
				select {
				case <-stop:
					return
				default:
				}
				tk, err := b.SubmitDensePri(row, nil, control.Background, nil)
				if err != nil {
					if !errors.Is(err, ErrQueueFull) {
						t.Errorf("background: %v", err)
						return
					}
					bgRejected.Add(1)
					continue
				}
				if _, err := tk.Wait(); err != nil {
					t.Errorf("background wait: %v", err)
					return
				}
				bgOK.Add(1)
			}
		}()
	}

	// Interactive trickle: 200 requests at ~1ms spacing (~1000/s, half
	// the refill rate).
	const n = 200
	lat := make([]time.Duration, 0, n)
	var itRejected int
	row := []float64{1, 2, 3, 4}
	for i := 0; i < n; i++ {
		t0 := time.Now()
		tk, err := b.SubmitDense(row, nil)
		if err != nil {
			itRejected++
			continue
		}
		if _, err := tk.Wait(); err != nil {
			t.Fatalf("interactive wait: %v", err)
		}
		lat = append(lat, time.Since(t0))
		time.Sleep(time.Millisecond)
	}
	close(stop)
	wg.Wait()

	if itRejected != 0 {
		t.Fatalf("interactive absorbed %d rejections; the reserve floor must route all of them to background", itRejected)
	}
	if bgRejected.Load() == 0 {
		t.Fatal("background flood saw no rejections — the bucket never saturated, test is not exercising the bound")
	}
	if bgOK.Load() == 0 {
		t.Fatal("background starved completely — weight >= 1 guarantees progress")
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	p99 := lat[len(lat)*99/100]
	if p99 > time.Second {
		t.Fatalf("interactive p99 = %v under background flood, want bounded (< 1s)", p99)
	}
}
