package serve

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// ModelMeta describes a registered model snapshot for health and metrics
// reporting.
type ModelMeta struct {
	Version  int64     `json:"version"`
	Path     string    `json:"path,omitempty"`
	Solver   string    `json:"solver,omitempty"`
	Classes  int       `json:"classes"`
	Features int       `json:"features"`
	LoadedAt time.Time `json:"loaded_at"`

	// Class-shard metadata, set when this snapshot holds only a slice of
	// a larger model's explicit class rows (ShardCount > 0): the snapshot
	// scores explicit classes [ShardLow, ShardHigh) of a model with
	// TotalClasses classes, and its own Classes is ShardHigh-ShardLow+1
	// (the slice plus the implicit reference class). The scatter-gather
	// router reads these from /healthz to plan partial-logit merges.
	ShardIndex   int `json:"shard_index,omitempty"`
	ShardCount   int `json:"shard_count,omitempty"`
	ShardLow     int `json:"shard_low,omitempty"`
	ShardHigh    int `json:"shard_high,omitempty"`
	TotalClasses int `json:"total_classes,omitempty"`

	// Zone is the placement zone/rack label the operator declared for
	// this replica ("" when undeclared). Routers read it to spread the
	// members of a replicated shard group across failure domains.
	Zone string `json:"zone,omitempty"`
}

// IsShard reports whether this snapshot is a class shard of a larger
// model rather than a full replica.
func (m ModelMeta) IsShard() bool { return m.ShardCount > 0 }

// entry is one registered snapshot with its reference count. The count
// starts at 1 (the registry's own reference); every Acquire adds one and
// every release drops one; the predictor's device is closed when the
// count reaches zero after the entry has been retired by a swap. That is
// the whole zero-downtime story: a swap never waits for in-flight
// batches, and in-flight batches never see a closed device.
type entry struct {
	pred      *Predictor
	meta      ModelMeta
	refs      atomic.Int64
	retired   atomic.Bool
	closeOnce sync.Once
}

func (e *entry) release() {
	if e.refs.Add(-1) == 0 && e.retired.Load() {
		e.closeOnce.Do(e.pred.Close)
	}
}

// Registry holds the currently served model behind an atomic pointer and
// hot-swaps new checkpoints in with zero downtime.
type Registry struct {
	mu      sync.Mutex // serializes Swap
	cur     atomic.Pointer[entry]
	version atomic.Int64
}

// NewRegistry returns an empty registry; Acquire fails with ErrNoModel
// until the first Swap.
func NewRegistry() *Registry { return &Registry{} }

// Swap atomically replaces the served model. The retired snapshot's
// device is released once its last in-flight batch drains. Returns the
// new version number.
func (r *Registry) Swap(p *Predictor, meta ModelMeta) int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	meta.Version = r.version.Add(1)
	if meta.LoadedAt.IsZero() {
		meta.LoadedAt = time.Now()
	}
	meta.Classes, meta.Features = p.Classes(), p.Features()
	e := &entry{pred: p, meta: meta}
	e.refs.Store(1)
	old := r.cur.Swap(e)
	if old != nil {
		old.retired.Store(true)
		old.release()
	}
	return meta.Version
}

// Acquire returns the current predictor and a release function that must
// be called when the caller's batch is done with it. The snapshot stays
// fully usable until released, even across concurrent swaps.
func (r *Registry) Acquire() (Scorer, func(), error) {
	p, _, release, err := r.AcquireCurrent()
	if err != nil {
		return nil, nil, err
	}
	return p, release, nil
}

// AcquirePredictor is Acquire for callers that need the concrete
// *Predictor (the HTTP layer reports its device stats).
func (r *Registry) AcquirePredictor() (*Predictor, func(), error) {
	s, rel, err := r.Acquire()
	if err != nil {
		return nil, nil, err
	}
	return s.(*Predictor), rel, nil
}

// AcquireCurrent returns the current predictor together with its
// snapshot's metadata, atomically with the acquisition — the returned
// version always describes exactly the weights the predictor scores
// with, even across concurrent swaps. The shard scoring path uses it so
// the router can detect partial results computed against different model
// versions mid-rollout.
func (r *Registry) AcquireCurrent() (*Predictor, ModelMeta, func(), error) {
	for {
		e := r.cur.Load()
		if e == nil {
			return nil, ModelMeta{}, nil, ErrNoModel
		}
		e.refs.Add(1)
		if r.cur.Load() == e {
			return e.pred, e.meta, func() { e.release() }, nil
		}
		// Lost a race with Swap; drop the speculative reference (which
		// may be the one that closes the retired snapshot) and retry.
		e.release()
	}
}

// Meta returns the current model's metadata; ok is false when no model
// is registered.
func (r *Registry) Meta() (ModelMeta, bool) {
	e := r.cur.Load()
	if e == nil {
		return ModelMeta{}, false
	}
	return e.meta, true
}

// Close retires the current model (if any); its device is released once
// in-flight batches drain. Acquire fails with ErrNoModel afterwards.
func (r *Registry) Close() {
	r.mu.Lock()
	defer r.mu.Unlock()
	if old := r.cur.Swap(nil); old != nil {
		old.retired.Store(true)
		old.release()
	}
}

func (m ModelMeta) String() string {
	return fmt.Sprintf("model v%d (%d classes, %d features, solver %q)",
		m.Version, m.Classes, m.Features, m.Solver)
}
