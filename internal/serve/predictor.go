package serve

import (
	"fmt"
	"sync"

	"newtonadmm/internal/device"
	"newtonadmm/internal/linalg"
	"newtonadmm/internal/loss"
	"newtonadmm/internal/sparse"
)

// Predictor scores feature rows against one immutable weight snapshot.
// It is safe for concurrent use (calls serialize on an internal mutex —
// the device is a single-stream resource); the intended high-throughput
// path is a single Batcher feeding it coalesced batches.
//
// All staging buffers grow to the high-water batch shape and are then
// reused, so steady-state calls perform zero heap allocations (pinned by
// AllocsPerRun tests).
type Predictor struct {
	mu sync.Mutex

	dev     *device.Device
	ownsDev bool
	scorer  *loss.Softmax

	weights  []float64
	classes  int
	features int

	// Dense staging: rows are copied into a grow-only flat buffer viewed
	// through a persistent Matrix header.
	denseBuf  []float64
	denseMat  linalg.Matrix
	denseFeat loss.Features // cached Dense{&denseMat}: no per-call interface conversion

	// CSR staging: a persistent CSR whose slices grow to the high-water
	// batch shape; the CSR's kernel parameter blocks are reused across
	// launches like any other CSR in the repo.
	csr     sparse.CSR
	csrFeat loss.Features // cached Sparse{&csr}
}

// NewPredictor builds a predictor for a (Classes-1)*Features weight
// vector, creating its own device with the given worker count
// (workers <= 0 selects NumCPU). Close releases the device.
func NewPredictor(weights []float64, classes, features, workers int) (*Predictor, error) {
	dev := device.New("serve", workers)
	p, err := NewPredictorOn(dev, weights, classes, features)
	if err != nil {
		dev.Close() // don't leak the freshly created worker pool
		return nil, err
	}
	p.ownsDev = true
	return p, nil
}

// NewPredictorOn builds a predictor on an existing device. The caller
// keeps ownership of the device; Close will not release it.
func NewPredictorOn(dev *device.Device, weights []float64, classes, features int) (*Predictor, error) {
	if classes < 2 {
		return nil, fmt.Errorf("serve: need at least 2 classes, got %d", classes)
	}
	if features <= 0 {
		return nil, fmt.Errorf("serve: need positive feature count, got %d", features)
	}
	if want := (classes - 1) * features; len(weights) != want {
		return nil, fmt.Errorf("serve: weight vector has %d entries, want (classes-1)*features = %d", len(weights), want)
	}
	scorer, err := loss.NewScorer(dev, classes)
	if err != nil {
		return nil, err
	}
	p := &Predictor{
		dev:      dev,
		scorer:   scorer,
		weights:  weights,
		classes:  classes,
		features: features,
	}
	p.denseMat.Cols = features
	p.denseFeat = loss.Dense{M: &p.denseMat}
	p.csr.NumCols = features
	p.csr.RowPtr = append(p.csr.RowPtr[:0], 0)
	p.csrFeat = loss.Sparse{M: &p.csr}
	return p, nil
}

// Classes returns the model's class count C.
func (p *Predictor) Classes() int { return p.classes }

// Features returns the model's raw feature dimension.
func (p *Predictor) Features() int { return p.features }

// Device returns the predictor's device (for stats reporting).
func (p *Predictor) Device() *device.Device { return p.dev }

// Close releases the predictor's device if it owns one. The predictor
// must not be used afterwards. Close is idempotent.
func (p *Predictor) Close() {
	if p.ownsDev {
		p.dev.Close()
	}
}

// stageDense copies rows into the dense staging matrix. Every row must
// have exactly Features entries.
func (p *Predictor) stageDense(rows [][]float64) error {
	n := len(rows)
	if need := n * p.features; cap(p.denseBuf) < need {
		p.denseBuf = make([]float64, need)
	}
	flat := p.denseBuf[:n*p.features]
	for i, r := range rows {
		if len(r) != p.features {
			return fmt.Errorf("serve: row %d has %d features, model expects %d", i, len(r), p.features)
		}
		copy(flat[i*p.features:(i+1)*p.features], r)
	}
	p.denseMat.Rows = n
	p.denseMat.Data = flat
	return nil
}

// stageCSR builds the staging CSR from per-row (indices, values) pairs.
// Indices must be strictly increasing within a row and inside
// [0, Features); values run parallel to indices.
func (p *Predictor) stageCSR(idx [][]int, val [][]float64) error {
	if len(idx) != len(val) {
		return fmt.Errorf("serve: %d index rows but %d value rows", len(idx), len(val))
	}
	p.csr.NumRows = len(idx)
	p.csr.RowPtr = p.csr.RowPtr[:1]
	p.csr.Col = p.csr.Col[:0]
	p.csr.Val = p.csr.Val[:0]
	for i := range idx {
		if len(idx[i]) != len(val[i]) {
			return fmt.Errorf("serve: row %d has %d indices but %d values", i, len(idx[i]), len(val[i]))
		}
		prev := -1
		for k, j := range idx[i] {
			if j < 0 || j >= p.features {
				return fmt.Errorf("serve: row %d index %d outside [0,%d)", i, j, p.features)
			}
			if j <= prev {
				return fmt.Errorf("serve: row %d indices not strictly increasing at %d", i, j)
			}
			prev = j
			p.csr.Col = append(p.csr.Col, j)
			p.csr.Val = append(p.csr.Val, val[i][k])
		}
		p.csr.RowPtr = append(p.csr.RowPtr, len(p.csr.Col))
	}
	return nil
}

// PredictDense writes the predicted class of each dense row into
// out[:len(rows)].
func (p *Predictor) PredictDense(rows [][]float64, out []int) error {
	if len(rows) == 0 {
		return nil
	}
	if len(out) < len(rows) {
		return fmt.Errorf("serve: output buffer has %d slots for %d rows", len(out), len(rows))
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if err := p.stageDense(rows); err != nil {
		return err
	}
	p.scorer.PredictInto(p.denseFeat, p.weights, out[:len(rows)])
	return nil
}

// PredictCSR writes the predicted class of each sparse row into
// out[:len(idx)].
func (p *Predictor) PredictCSR(idx [][]int, val [][]float64, out []int) error {
	if len(idx) == 0 {
		return nil
	}
	if len(out) < len(idx) {
		return fmt.Errorf("serve: output buffer has %d slots for %d rows", len(out), len(idx))
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if err := p.stageCSR(idx, val); err != nil {
		return err
	}
	p.scorer.PredictInto(p.csrFeat, p.weights, out[:len(idx)])
	return nil
}

// ProbaDense writes the C-class probability vector of each dense row
// into out (row-major len(rows) x Classes, reference class last).
func (p *Predictor) ProbaDense(rows [][]float64, out []float64) error {
	if len(rows) == 0 {
		return nil
	}
	if len(out) < len(rows)*p.classes {
		return fmt.Errorf("serve: proba buffer has %d entries for %d rows x %d classes", len(out), len(rows), p.classes)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if err := p.stageDense(rows); err != nil {
		return err
	}
	p.scorer.ProbaInto(p.denseFeat, p.weights, out[:len(rows)*p.classes])
	return nil
}

// ProbaCSR writes the C-class probability vector of each sparse row into
// out (row-major len(idx) x Classes, reference class last).
func (p *Predictor) ProbaCSR(idx [][]int, val [][]float64, out []float64) error {
	if len(idx) == 0 {
		return nil
	}
	if len(out) < len(idx)*p.classes {
		return fmt.Errorf("serve: proba buffer has %d entries for %d rows x %d classes", len(out), len(idx), p.classes)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if err := p.stageCSR(idx, val); err != nil {
		return err
	}
	p.scorer.ProbaInto(p.csrFeat, p.weights, out[:len(idx)*p.classes])
	return nil
}

// ScoresDense writes the raw explicit-class score tile of each dense row
// into out (row-major len(rows) x (Classes-1), no softmax transform).
// This is the partial-logit surface of the class-sharded serving tier: a
// shard replica's predictor holds only its slice of the weight rows (its
// Classes is the slice width plus the implicit reference class) and the
// router merges the partial columns before the argmax/probability
// transform.
func (p *Predictor) ScoresDense(rows [][]float64, out []float64) error {
	if len(rows) == 0 {
		return nil
	}
	m := p.classes - 1
	if len(out) < len(rows)*m {
		return fmt.Errorf("serve: score buffer has %d entries for %d rows x %d explicit classes", len(out), len(rows), m)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if err := p.stageDense(rows); err != nil {
		return err
	}
	p.scorer.ScoresInto(p.denseFeat, p.weights, out[:len(rows)*m])
	return nil
}

// ScoresCSR is ScoresDense for sparse rows.
func (p *Predictor) ScoresCSR(idx [][]int, val [][]float64, out []float64) error {
	if len(idx) == 0 {
		return nil
	}
	m := p.classes - 1
	if len(out) < len(idx)*m {
		return fmt.Errorf("serve: score buffer has %d entries for %d rows x %d explicit classes", len(out), len(idx), m)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if err := p.stageCSR(idx, val); err != nil {
		return err
	}
	p.scorer.ScoresInto(p.csrFeat, p.weights, out[:len(idx)*m])
	return nil
}

// ArgmaxProba returns the class of a probability vector with exactly the
// tie-breaking of loss.PredictInto: the reference class (last entry)
// wins ties against explicit classes, and among explicit classes the
// lowest index wins.
func ArgmaxProba(probs []float64) int {
	ref := len(probs) - 1
	best, bestP := ref, probs[ref]
	for c := 0; c < ref; c++ {
		if probs[c] > bestP {
			best, bestP = c, probs[c]
		}
	}
	return best
}
