package serve

import (
	"math/rand"
	"sync"
	"testing"
	"time"
)

// recordingTarget notes the first element of every row it is asked to
// predict; the tests encode the row's identity there.
type recordingTarget struct {
	mu   sync.Mutex
	rows []int
}

func (r *recordingTarget) Predict(row []float64) (int, error) {
	r.mu.Lock()
	r.rows = append(r.rows, int(row[0]))
	r.mu.Unlock()
	return 0, nil
}

func TestLoadConfigSeedClamp(t *testing.T) {
	if s := (LoadConfig{}).withDefaults().Seed; s != 1 {
		t.Errorf("zero Seed defaulted to %d, want 1 (never an unseeded source)", s)
	}
	if s := (LoadConfig{Seed: -3}).withDefaults().Seed; s != 1 {
		t.Errorf("negative Seed defaulted to %d, want 1", s)
	}
	if s := (LoadConfig{Seed: 42}).withDefaults().Seed; s != 42 {
		t.Errorf("explicit Seed rewritten to %d, want 42", s)
	}
}

// TestOpenLoopSeedDrivesRowPicks pins the replay contract: the open
// loop's row picker is exactly rand.New(rand.NewSource(cfg.Seed)). With
// the outstanding cap far above the total arrival count nothing can be
// shed, so every pick reaches the target and the delivered rows must be
// — as a multiset; completion order races — the seeded generator's own
// prefix. A regression to a time-derived source fails this immediately.
func TestOpenLoopSeedDrivesRowPicks(t *testing.T) {
	const nRows, seed = 16, 7
	rows := make([][]float64, nRows)
	for i := range rows {
		rows[i] = []float64{float64(i)}
	}
	tgt := &recordingTarget{}
	res, err := RunLoad(tgt, rows, LoadConfig{
		Mode: "open", Rate: 2000,
		Duration: 100 * time.Millisecond, Warmup: 10 * time.Millisecond,
		Concurrency: 4096, // >> the ~220 total arrivals: shed impossible
		Seed:        seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Shed != 0 {
		t.Fatalf("shed = %d with the cap above the arrival count; the multiset check needs every pick delivered", res.Shed)
	}
	tgt.mu.Lock()
	got := append([]int(nil), tgt.rows...)
	tgt.mu.Unlock()
	if len(got) == 0 {
		t.Fatal("no requests reached the target")
	}

	rng := rand.New(rand.NewSource(seed))
	var want, have [nRows]int
	for range got {
		want[rng.Intn(nRows)]++
	}
	for _, v := range got {
		if v < 0 || v >= nRows {
			t.Fatalf("target saw unknown row %d", v)
		}
		have[v]++
	}
	if want != have {
		t.Errorf("delivered row multiset %v != seeded picker prefix %v: Seed is not reaching the row picker", have, want)
	}
}
