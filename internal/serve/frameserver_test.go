package serve

import (
	"bufio"
	"errors"
	"math/rand"
	"net"
	"testing"
	"time"

	"newtonadmm/internal/wire"
)

// frameTestStack builds a registry+batcher+frame listener over a random
// model and returns the dial address plus the weights for reference
// scoring.
func frameTestStack(t *testing.T, classes, features int) (addr string, w []float64, reg *Registry, shutdown func()) {
	t.Helper()
	rng := rand.New(rand.NewSource(61))
	w = make([]float64, (classes-1)*features)
	for i := range w {
		w[i] = rng.NormFloat64()
	}
	p, err := NewPredictor(w, classes, features, 1)
	if err != nil {
		t.Fatal(err)
	}
	reg = NewRegistry()
	reg.Swap(p, ModelMeta{})
	bat := NewBatcher(reg, BatcherConfig{MaxBatch: 8, MaxLinger: 50 * time.Microsecond, QueueDepth: 64})
	fs := NewFrameServer(reg, bat, func() (int64, error) { return reg.Swap(mustPredictor(t, w, classes, features), ModelMeta{}), nil })
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go fs.Serve(ln)
	return ln.Addr().String(), w, reg, func() {
		fs.Close()
		bat.Close()
		reg.Close()
	}
}

func mustPredictor(t *testing.T, w []float64, classes, features int) *Predictor {
	t.Helper()
	p, err := NewPredictor(w, classes, features, 1)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// frameClient is a minimal single-connection client for these tests.
type frameClient struct {
	c   net.Conn
	r   *wire.Reader
	enc wire.Encoder
}

func dialFrames(t *testing.T, addr string) *frameClient {
	t.Helper()
	c, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	return &frameClient{c: c, r: wire.NewReader(bufio.NewReader(c))}
}

func (fc *frameClient) roundTrip(t *testing.T) (wire.Header, []byte) {
	t.Helper()
	if _, err := fc.c.Write(fc.enc.Bytes()); err != nil {
		t.Fatal(err)
	}
	h, p, err := fc.r.Next()
	if err != nil {
		t.Fatal(err)
	}
	return h, p
}

// TestFrameServerPredictProbaScores drives all three batch opcodes over
// a live socket and checks the answers match direct predictor calls
// bitwise, with correlation IDs echoed.
func TestFrameServerPredictProbaScores(t *testing.T) {
	const classes, features, rows = 5, 7, 6
	addr, w, _, shutdown := frameTestStack(t, classes, features)
	defer shutdown()

	rng := rand.New(rand.NewSource(62))
	dense := make([][]float64, rows)
	for i := range dense {
		dense[i] = make([]float64, features)
		for j := range dense[i] {
			dense[i][j] = rng.NormFloat64()
		}
	}
	ref := mustPredictor(t, w, classes, features)
	defer ref.Close()
	wantPred := make([]int, rows)
	if err := ref.PredictDense(dense, wantPred); err != nil {
		t.Fatal(err)
	}
	wantProba := make([]float64, rows*classes)
	if err := ref.ProbaDense(dense, wantProba); err != nil {
		t.Fatal(err)
	}
	wantScores := make([]float64, rows*(classes-1))
	if err := ref.ScoresDense(dense, wantScores); err != nil {
		t.Fatal(err)
	}

	fc := dialFrames(t, addr)
	defer fc.c.Close()

	// Mixed batch: odd rows as sparse records carrying the same values.
	encodeBatch := func(op wire.Op, corr uint64, cols int) {
		fc.enc.Begin(op, corr)
		fc.enc.BatchHeader(rows, features, cols)
		for i, row := range dense {
			if i%2 == 1 {
				var idx []int
				var val []float64
				for j, v := range row {
					if v != 0 {
						idx = append(idx, j)
						val = append(val, v)
					}
				}
				fc.enc.SparseRow(idx, val)
			} else {
				fc.enc.DenseRow(row)
			}
		}
	}

	encodeBatch(wire.OpPredict, 100, 0)
	h, p := fc.roundTrip(t)
	if h.Op != wire.OpPredictResp || h.Corr != 100 {
		t.Fatalf("predict response header %+v", h)
	}
	got := make([]int, rows)
	if _, n, err := wire.DecodePredictResp(p, got); err != nil || n != rows {
		t.Fatalf("predict decode: n=%d err=%v", n, err)
	}
	for i := range wantPred {
		if got[i] != wantPred[i] {
			t.Fatalf("row %d: frame plane %d, direct %d", i, got[i], wantPred[i])
		}
	}

	encodeBatch(wire.OpProba, 101, 0)
	h, p = fc.roundTrip(t)
	if h.Op != wire.OpProbaResp || h.Corr != 101 {
		t.Fatalf("proba response header %+v", h)
	}
	gotProba := make([]float64, rows*classes)
	if _, nr, nc, err := wire.DecodeFloatsResp(p, gotProba); err != nil || nr != rows || nc != classes {
		t.Fatalf("proba decode: %dx%d err=%v", nr, nc, err)
	}
	for i := range wantProba {
		if gotProba[i] != wantProba[i] { // bitwise
			t.Fatalf("proba[%d]: frame plane %v, direct %v", i, gotProba[i], wantProba[i])
		}
	}

	encodeBatch(wire.OpScores, 102, classes-1)
	h, p = fc.roundTrip(t)
	if h.Op != wire.OpScoresResp || h.Corr != 102 {
		t.Fatalf("scores response header %+v", h)
	}
	gotScores := make([]float64, rows*(classes-1))
	if _, nr, nc, err := wire.DecodeFloatsResp(p, gotScores); err != nil || nr != rows || nc != classes-1 {
		t.Fatalf("scores decode: %dx%d err=%v", nr, nc, err)
	}
	for i := range wantScores {
		if gotScores[i] != wantScores[i] { // bitwise
			t.Fatalf("scores[%d]: frame plane %v, direct %v", i, gotScores[i], wantScores[i])
		}
	}

	// Planned-width mismatch answers CodeShapeChanged without a tile.
	encodeBatch(wire.OpScores, 103, classes+3)
	h, p = fc.roundTrip(t)
	if h.Op != wire.OpError {
		t.Fatalf("mismatched cols answered %#x, want error frame", h.Op)
	}
	if code, _, err := wire.DecodeError(p); err != nil || code != wire.CodeShapeChanged {
		t.Fatalf("mismatched cols code %d err=%v, want CodeShapeChanged", code, err)
	}
}

// TestFrameServerMetaReload covers the control opcodes.
func TestFrameServerMetaReload(t *testing.T) {
	const classes, features = 4, 6
	addr, _, _, shutdown := frameTestStack(t, classes, features)
	defer shutdown()
	fc := dialFrames(t, addr)
	defer fc.c.Close()

	fc.enc.Begin(wire.OpMeta, 7)
	h, p := fc.roundTrip(t)
	if h.Op != wire.OpMetaResp || h.Corr != 7 {
		t.Fatalf("meta header %+v", h)
	}
	m, err := wire.DecodeMetaResp(p)
	if err != nil || m.Classes != classes || m.Features != features || m.Version != 1 {
		t.Fatalf("meta %+v err=%v", m, err)
	}

	fc.enc.Begin(wire.OpReload, 8)
	h, p = fc.roundTrip(t)
	if h.Op != wire.OpReloadResp {
		t.Fatalf("reload header %+v", h)
	}
	if v, err := wire.DecodeReloadResp(p); err != nil || v != 2 {
		t.Fatalf("reload v=%d err=%v, want 2", v, err)
	}
	fc.enc.Begin(wire.OpMeta, 9)
	_, p = fc.roundTrip(t)
	if m, _ := wire.DecodeMetaResp(p); m.Version != 2 {
		t.Fatalf("meta after reload reports v%d, want 2", m.Version)
	}
}

// TestFrameServerPipelining writes several requests before reading any
// response; the server answers all of them in order with the right
// correlation IDs.
func TestFrameServerPipelining(t *testing.T) {
	const classes, features = 4, 5
	addr, _, _, shutdown := frameTestStack(t, classes, features)
	defer shutdown()
	fc := dialFrames(t, addr)
	defer fc.c.Close()

	row := []float64{1, -2, 0.5, 3, -1}
	const depth = 16
	for k := 0; k < depth; k++ {
		fc.enc.Begin(wire.OpPredict, uint64(1000+k))
		fc.enc.BatchHeader(1, features, 0)
		fc.enc.DenseRow(row)
		if _, err := fc.c.Write(fc.enc.Bytes()); err != nil {
			t.Fatal(err)
		}
	}
	for k := 0; k < depth; k++ {
		h, p, err := fc.r.Next()
		if err != nil {
			t.Fatal(err)
		}
		if h.Op != wire.OpPredictResp || h.Corr != uint64(1000+k) {
			t.Fatalf("response %d: header %+v", k, h)
		}
		out := make([]int, 1)
		if _, _, err := wire.DecodePredictResp(p, out); err != nil {
			t.Fatal(err)
		}
	}
}

// TestFrameServerMalformedFrameClosesConn checks the protocol contract:
// a request-shaped error keeps the connection, a framing error answers
// best-effort and closes it.
func TestFrameServerMalformedFrameClosesConn(t *testing.T) {
	addr, _, _, shutdown := frameTestStack(t, 4, 5)
	defer shutdown()
	fc := dialFrames(t, addr)
	defer fc.c.Close()

	// Request-shaped: empty batch → error frame, connection survives.
	fc.enc.Begin(wire.OpPredict, 1)
	fc.enc.BatchHeader(0, 5, 0)
	h, p := fc.roundTrip(t)
	if h.Op != wire.OpError {
		t.Fatalf("empty batch answered %#x", h.Op)
	}
	if code, _, _ := wire.DecodeError(p); code != wire.CodeBadRequest {
		t.Fatalf("empty batch code %d", code)
	}
	fc.enc.Begin(wire.OpMeta, 2)
	if h, _ = fc.roundTrip(t); h.Op != wire.OpMetaResp {
		t.Fatal("connection did not survive a request-shaped error")
	}

	// Framing-level: garbage bytes → error frame (corr 0), then EOF.
	if _, err := fc.c.Write([]byte("this is not a NAWP frame....")); err != nil {
		t.Fatal(err)
	}
	h, p, err := fc.r.Next()
	if err != nil {
		t.Fatalf("expected a best-effort error frame, got %v", err)
	}
	if h.Op != wire.OpError || h.Corr != 0 {
		t.Fatalf("framing error answered %+v", h)
	}
	if code, _, _ := wire.DecodeError(p); code != wire.CodeBadRequest {
		t.Fatalf("framing error code %d", code)
	}
	fc.c.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, _, err := fc.r.Next(); err == nil {
		t.Fatal("connection stayed open after a framing error")
	} else if errors.Is(err, wire.ErrBadFrame) {
		t.Fatalf("expected EOF-like close, got %v", err)
	}
}
