// Package serve is the online inference subsystem: it turns the
// repository's trained softmax models into a production-style model
// server built on the same fused kernel substrate the solvers train on.
//
// The layering mirrors what GPU inference stacks (kserve-style model
// servers over continuous-batching engines) converge on:
//
//   - Predictor scores batches of dense or CSR feature rows against one
//     immutable weight snapshot with zero steady-state heap allocations:
//     rows are staged into grow-only buffers and scored by the fused
//     MulNT / MulNTReduce launches through loss.PredictInto/ProbaInto,
//     reusing the device scratch arena exactly like the training path.
//   - Batcher coalesces concurrent requests into micro-batches (up to
//     MaxBatch rows or a MaxLinger window, whichever first) so per-row
//     work is amortized over one kernel launch — the inference-side
//     analogue of the paper's argument for batching per-sample work into
//     GPU matrix kernels. Its admission queue is bounded: when the queue
//     is full, Submit fails fast with ErrQueueFull (backpressure), it
//     never drops an accepted request.
//   - Registry holds the current Predictor behind an atomic pointer with
//     reference counting, so a new checkpoint hot-swaps in with zero
//     downtime: in-flight batches finish on the old snapshot, whose
//     device is released when the last reference drains.
//   - Server exposes the kserve-style HTTP/JSON surface (/v1/predict,
//     /v1/proba, /v1/scores, /healthz, /metricz, /v1/reload) on top of
//     the batcher.
//   - FrameServer exposes the same serving stack on the binary frame
//     data plane (internal/wire; DESIGN.md "Binary data plane" is the
//     spec): a TCP listener whose connections carry pipelined
//     length-prefixed frames, sharing the Batcher and Registry with the
//     HTTP surface so both planes coalesce into the same kernel
//     launches and see the same hot swaps.
//   - RunLoad is a deterministic closed/open-loop load generator
//     reporting throughput and latency quantiles via metrics.Histogram.
//
// Invariants:
//
//   - Zero-alloc steady state: predictor scoring, batcher round trips,
//     and frame encode/decode allocate nothing once staging reached its
//     high-water shape (pinned by AllocsPerRun tests here and in
//     internal/wire).
//   - Bitwise equivalence across surfaces: the HTTP plane, the frame
//     plane, and direct Predictor calls produce bit-identical classes,
//     probabilities, and partial-score tiles for the same snapshot —
//     JSON by exact float64 round-tripping, frames by raw IEEE-754
//     bits.
//   - Accepted work is never dropped: full queues reject synchronously
//     (429 / CodeQueueFull), shutdown answers in-flight requests with
//     ErrClosed, and hot swaps retire the old device only after its
//     last batch releases.
//
// See DESIGN.md for the end-to-end architecture and PERF.md for
// measured serving throughput and latency.
package serve
