package serve

import (
	"errors"
	"math"
	"math/rand"
	"sync"
	"testing"
	"time"
)

// fakeScorer answers deterministically from the first feature value and
// records batch sizes; an optional gate blocks each scoring call until
// released, and entered signals that a batch reached the scorer.
type fakeScorer struct {
	classes, features int
	gate              chan struct{} // nil: never blocks
	entered           chan struct{} // nil: no signal

	mu         sync.Mutex
	batchSizes []int
}

func (f *fakeScorer) Classes() int  { return f.classes }
func (f *fakeScorer) Features() int { return f.features }

func (f *fakeScorer) enter(n int) {
	if f.entered != nil {
		f.entered <- struct{}{}
	}
	if f.gate != nil {
		<-f.gate
	}
	f.mu.Lock()
	f.batchSizes = append(f.batchSizes, n)
	f.mu.Unlock()
}

func (f *fakeScorer) classOf(v float64) int {
	c := int(math.Abs(v)) % f.classes
	return c
}

func (f *fakeScorer) PredictDense(rows [][]float64, out []int) error {
	f.enter(len(rows))
	for i, r := range rows {
		out[i] = f.classOf(r[0])
	}
	return nil
}

func (f *fakeScorer) PredictCSR(idx [][]int, val [][]float64, out []int) error {
	f.enter(len(idx))
	for i := range val {
		out[i] = f.classOf(val[i][0])
	}
	return nil
}

func (f *fakeScorer) ProbaDense(rows [][]float64, out []float64) error {
	f.enter(len(rows))
	for i, r := range rows {
		for c := 0; c < f.classes; c++ {
			out[i*f.classes+c] = 0
		}
		out[i*f.classes+f.classOf(r[0])] = 1
	}
	return nil
}

func (f *fakeScorer) ProbaCSR(idx [][]int, val [][]float64, out []float64) error {
	f.enter(len(idx))
	for i := range val {
		for c := 0; c < f.classes; c++ {
			out[i*f.classes+c] = 0
		}
		out[i*f.classes+f.classOf(val[i][0])] = 1
	}
	return nil
}

func (f *fakeScorer) sizes() []int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]int(nil), f.batchSizes...)
}

type fakeSource struct {
	s   Scorer
	err error
}

func (f fakeSource) Acquire() (Scorer, func(), error) {
	if f.err != nil {
		return nil, nil, f.err
	}
	return f.s, func() {}, nil
}

// TestBatcherConcurrentCorrectness is the headline -race test: many
// goroutines hammer one batcher over a real predictor with mixed dense,
// sparse, and proba traffic, and every request must get exactly the
// class the predictor computes for its row directly.
func TestBatcherConcurrentCorrectness(t *testing.T) {
	const classes, features = 5, 24
	const workers, perWorker = 8, 60
	p := makePredictor(t, classes, features, 20)
	rng := rand.New(rand.NewSource(21))
	rows := randRows(rng, 32, features, 0.5)
	idx, val := toCSRRows(rows)
	want := make([]int, len(rows))
	if err := p.PredictDense(rows, want); err != nil {
		t.Fatal(err)
	}

	reg := NewRegistry()
	reg.Swap(p, ModelMeta{})
	b := NewBatcher(reg, BatcherConfig{MaxBatch: 8, MaxLinger: 100 * time.Microsecond, QueueDepth: 512})
	defer b.Close()

	var wg sync.WaitGroup
	errCh := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			probs := make([]float64, classes)
			for k := 0; k < perWorker; k++ {
				i := (worker*perWorker + k) % len(rows)
				var got int
				var err error
				switch k % 3 {
				case 0:
					got, err = b.Predict(rows[i])
				case 1:
					got, err = b.PredictCSR(idx[i], val[i])
				default:
					got, err = b.Proba(rows[i], probs)
					if err == nil {
						var sum float64
						for _, v := range probs {
							sum += v
						}
						if math.Abs(sum-1) > 1e-9 {
							errCh <- errors.New("probabilities do not sum to 1")
							return
						}
					}
				}
				if err != nil {
					errCh <- err
					return
				}
				if got != want[i] {
					errCh <- errors.New("wrong class from batcher")
					return
				}
			}
		}(w)
	}
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}
	st := b.Stats()
	if st.Submitted != workers*perWorker || st.Completed != st.Submitted || st.Rejected != 0 {
		t.Fatalf("stats %+v", st)
	}
	if st.Batches >= st.Completed {
		t.Fatalf("no batching happened: %d batches for %d requests", st.Batches, st.Completed)
	}
}

// TestBatcherRespectsMaxBatch checks no launch ever exceeds MaxBatch and
// queued requests coalesce greedily into one batch.
func TestBatcherRespectsMaxBatch(t *testing.T) {
	f := &fakeScorer{classes: 3, features: 4, gate: make(chan struct{}, 64), entered: make(chan struct{}, 64)}
	b := NewBatcher(fakeSource{s: f}, BatcherConfig{MaxBatch: 16, MaxLinger: -1, QueueDepth: 64})
	defer b.Close()

	row := []float64{1, 0, 0, 0}
	// One request reaches the scorer and blocks there.
	res := make(chan error, 64)
	submit := func() {
		_, err := b.Predict(row)
		res <- err
	}
	go submit()
	<-f.entered

	// 10 more pile into the queue while the first batch is in flight.
	for i := 0; i < 10; i++ {
		go submit()
	}
	waitFor(t, func() bool { return b.Stats().Submitted == 11 })

	f.gate <- struct{}{} // release batch 1
	<-f.entered          // batch 2 at the scorer
	f.gate <- struct{}{} // release batch 2
	for i := 0; i < 11; i++ {
		if err := <-res; err != nil {
			t.Fatal(err)
		}
	}
	sizes := f.sizes()
	if len(sizes) != 2 || sizes[0] != 1 || sizes[1] != 10 {
		t.Fatalf("batch sizes %v, want [1 10]", sizes)
	}

	// A burst larger than MaxBatch splits into <= MaxBatch launches.
	// Pre-release the gate so the scorer flows freely (entered signals
	// are buffered and simply accumulate).
	for i := 0; i < 40; i++ {
		f.gate <- struct{}{}
	}
	for i := 0; i < 40; i++ {
		go submit()
	}
	for i := 0; i < 40; i++ {
		if err := <-res; err != nil {
			t.Fatal(err)
		}
	}
	for _, s := range f.sizes() {
		if s > 16 {
			t.Fatalf("batch of %d exceeds MaxBatch 16", s)
		}
	}
}

// TestBatcherLingerBounds checks a partial batch launches within the
// linger window rather than waiting for MaxBatch, and that stragglers
// arriving inside the window join the batch.
func TestBatcherLingerBounds(t *testing.T) {
	f := &fakeScorer{classes: 3, features: 2}
	b := NewBatcher(fakeSource{s: f}, BatcherConfig{MaxBatch: 1000, MaxLinger: 25 * time.Millisecond, QueueDepth: 64})
	defer b.Close()

	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := b.Predict([]float64{2, 0}); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	if elapsed < 10*time.Millisecond {
		t.Fatalf("partial batch launched after %v, before the linger window", elapsed)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("partial batch took %v, linger bound not respected", elapsed)
	}
	var total int
	for _, s := range f.sizes() {
		total += s
	}
	if total != 3 {
		t.Fatalf("scored %d rows, want 3", total)
	}
}

// TestBatcherBackpressure checks a full admission queue rejects with
// ErrQueueFull while every accepted request is still answered.
func TestBatcherBackpressure(t *testing.T) {
	f := &fakeScorer{classes: 3, features: 2, gate: make(chan struct{}, 64), entered: make(chan struct{}, 64)}
	b := NewBatcher(fakeSource{s: f}, BatcherConfig{MaxBatch: 1, MaxLinger: -1, QueueDepth: 4})
	defer b.Close()

	row := []float64{1, 0}
	res := make(chan error, 16)
	go func() { _, err := b.Predict(row); res <- err }()
	<-f.entered // one in flight, queue empty

	for i := 0; i < 4; i++ { // fill the queue exactly
		go func() { _, err := b.Predict(row); res <- err }()
	}
	waitFor(t, func() bool { return b.Stats().Submitted == 5 })

	if _, err := b.Predict(row); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("overflow submit: got %v, want ErrQueueFull", err)
	}
	st := b.Stats()
	if st.Rejected != 1 {
		t.Fatalf("rejected %d, want 1", st.Rejected)
	}

	// Release everything: all 5 accepted requests complete successfully.
	done := make(chan struct{})
	go func() {
		for i := 0; i < 5; i++ {
			f.gate <- struct{}{}
		}
		close(done)
	}()
	for i := 0; i < 5; i++ {
		if err := <-res; err != nil {
			t.Fatal(err)
		}
	}
	<-done
	st = b.Stats()
	if st.Completed != 5 || st.Submitted != 5 {
		t.Fatalf("accepted requests dropped: %+v", st)
	}
}

// TestBatcherCloseAnswersEverything checks shutdown rejects queued
// requests with ErrClosed instead of dropping them, and later submits
// fail fast.
func TestBatcherCloseAnswersEverything(t *testing.T) {
	f := &fakeScorer{classes: 3, features: 2, gate: make(chan struct{}, 64), entered: make(chan struct{}, 64)}
	b := NewBatcher(fakeSource{s: f}, BatcherConfig{MaxBatch: 1, MaxLinger: -1, QueueDepth: 8})

	row := []float64{1, 0}
	res := make(chan error, 16)
	go func() { _, err := b.Predict(row); res <- err }()
	<-f.entered
	for i := 0; i < 3; i++ {
		go func() { _, err := b.Predict(row); res <- err }()
	}
	waitFor(t, func() bool { return b.Stats().Submitted == 4 })

	closed := make(chan struct{})
	go func() { b.Close(); close(closed) }()
	f.gate <- struct{}{} // let the in-flight batch finish so Close can drain
	// The queued 3 may either be scored (if the loop dequeued them before
	// stop) or rejected with ErrClosed — but never lost.
	for i := 0; i < 3; i++ {
		select {
		case <-f.entered:
			f.gate <- struct{}{}
		case <-closed:
		}
	}
	okCount, closedCount := 0, 0
	for i := 0; i < 4; i++ {
		switch err := <-res; {
		case err == nil:
			okCount++
		case errors.Is(err, ErrClosed):
			closedCount++
		default:
			t.Fatalf("unexpected error %v", err)
		}
	}
	<-closed
	if okCount+closedCount != 4 {
		t.Fatalf("requests lost: %d ok, %d closed", okCount, closedCount)
	}
	if _, err := b.Predict(row); !errors.Is(err, ErrClosed) {
		t.Fatalf("submit after close: %v", err)
	}
	if st := b.Stats(); st.Completed != st.Submitted {
		t.Fatalf("accepted but unanswered requests: %+v", st)
	}
}

// TestBatcherNoModel propagates the source error to every request.
func TestBatcherNoModel(t *testing.T) {
	b := NewBatcher(fakeSource{err: ErrNoModel}, BatcherConfig{MaxBatch: 4, MaxLinger: -1})
	defer b.Close()
	if _, err := b.Predict([]float64{1}); !errors.Is(err, ErrNoModel) {
		t.Fatalf("got %v, want ErrNoModel", err)
	}
}

// TestBatcherIsolatesMalformedRows: one bad row in a coalesced batch
// must not fail its batchmates.
func TestBatcherIsolatesMalformedRows(t *testing.T) {
	const classes, features = 4, 8
	p := makePredictor(t, classes, features, 30)
	reg := NewRegistry()
	reg.Swap(p, ModelMeta{})
	b := NewBatcher(reg, BatcherConfig{MaxBatch: 8, MaxLinger: 5 * time.Millisecond, QueueDepth: 64})
	defer b.Close()

	rng := rand.New(rand.NewSource(31))
	good := randRows(rng, 4, features, 1)
	want := make([]int, len(good))
	if err := p.PredictDense(good, want); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	bad := []float64{1, 2} // wrong width
	badErr := make(chan error, 1)
	gotClasses := make([]int, len(good))
	errs := make([]error, len(good))
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, err := b.Predict(bad)
		badErr <- err
	}()
	for i := range good {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			gotClasses[i], errs[i] = b.Predict(good[i])
		}(i)
	}
	wg.Wait()
	if err := <-badErr; err == nil {
		t.Fatal("malformed row scored without error")
	}
	for i := range good {
		if errs[i] != nil {
			t.Fatalf("good row %d poisoned by batchmate: %v", i, errs[i])
		}
		if gotClasses[i] != want[i] {
			t.Fatalf("good row %d: class %d, want %d", i, gotClasses[i], want[i])
		}
	}
}

// TestBatcherRejectsNilDenseRow: a nil row must fail at submit instead
// of being mis-partitioned as an empty sparse request.
func TestBatcherRejectsNilDenseRow(t *testing.T) {
	f := &fakeScorer{classes: 3, features: 2}
	b := NewBatcher(fakeSource{s: f}, BatcherConfig{MaxBatch: 4, MaxLinger: -1})
	defer b.Close()
	if _, err := b.Predict(nil); err == nil {
		t.Fatal("nil dense row accepted")
	}
}

// TestBatcherProbaShapeChangeOnSwap: a proba request admitted against a
// C-class model but scored (after a hot swap) by a model with a
// different class count must fail explicitly, never return a truncated
// or padded probability vector.
func TestBatcherProbaShapeChangeOnSwap(t *testing.T) {
	const features = 6
	reg := NewRegistry()
	p3 := makePredictor(t, 3, features, 50)
	reg.Swap(p3, ModelMeta{})
	b := NewBatcher(reg, BatcherConfig{MaxBatch: 4, MaxLinger: -1, QueueDepth: 16})
	defer b.Close()

	// Warm: a 3-entry buffer works against the 3-class model.
	row := make([]float64, features)
	row[0] = 1
	probs := make([]float64, 3)
	if _, err := b.Proba(row, probs); err != nil {
		t.Fatal(err)
	}

	// Swap in a 5-class model; the stale 3-entry buffer must now be
	// rejected with a shape error rather than silently truncated.
	p5 := makePredictor(t, 5, features, 51)
	reg.Swap(p5, ModelMeta{})
	if _, err := b.Proba(row, probs); !errors.Is(err, ErrModelShapeChanged) {
		t.Fatalf("3-entry proba buffer against 5-class model: got %v, want ErrModelShapeChanged", err)
	}
	// A correctly sized buffer succeeds and sums to 1.
	probs5 := make([]float64, 5)
	if _, err := b.Proba(row, probs5); err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, v := range probs5 {
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("probabilities sum to %v", sum)
	}
}

// waitFor polls cond until it holds or the deadline expires.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached within 5s")
		}
		time.Sleep(100 * time.Microsecond)
	}
}
