package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"math"
	"strings"
	"testing"
)

// buildBatchFrame assembles a two-row (dense + sparse) OpScores request
// used across the tests.
func buildBatchFrame(e *Encoder) []byte {
	e.Begin(OpScores, 42)
	e.BatchHeader(2, 3, 4)
	e.DenseRow([]float64{1.5, -2.25, math.Pi})
	e.SparseRow([]int{0, 2}, []float64{0.5, -0.125})
	return e.Bytes()
}

// TestFrameLayoutMatchesSpec pins the exact byte offsets documented in
// DESIGN.md's "Binary data plane" section: header fields at offsets
// 0/4/5/6/8/16, batch payload fields at payload offsets 0/4/8, and the
// row records that follow. If this test fails, either the code or the
// spec is wrong — fix whichever drifted.
func TestFrameLayoutMatchesSpec(t *testing.T) {
	var e Encoder
	f := buildBatchFrame(&e)

	// Header (DESIGN.md: frame header, 20 bytes).
	if string(f[0:4]) != "NAWP" {
		t.Fatalf("magic at offset 0 = %q, spec says \"NAWP\"", f[0:4])
	}
	if f[4] != Version {
		t.Fatalf("version at offset 4 = %d, want %d", f[4], Version)
	}
	if Op(f[5]) != OpScores {
		t.Fatalf("opcode at offset 5 = %#x, want %#x", f[5], OpScores)
	}
	if flags := binary.LittleEndian.Uint16(f[6:8]); flags != 0 {
		t.Fatalf("flags at offset 6 = %#x, spec requires 0 on an untraced frame", flags)
	}
	if corr := binary.LittleEndian.Uint64(f[8:16]); corr != 42 {
		t.Fatalf("correlation ID at offset 8 = %d, want 42", corr)
	}
	payloadLen := binary.LittleEndian.Uint32(f[16:20])
	if int(payloadLen) != len(f)-HeaderSize {
		t.Fatalf("length at offset 16 = %d, frame has %d payload bytes", payloadLen, len(f)-HeaderSize)
	}

	// Batch payload (DESIGN.md: batch request payload).
	p := f[HeaderSize:]
	if rows := binary.LittleEndian.Uint32(p[0:4]); rows != 2 {
		t.Fatalf("rows at payload offset 0 = %d, want 2", rows)
	}
	if feat := binary.LittleEndian.Uint32(p[4:8]); feat != 3 {
		t.Fatalf("features at payload offset 4 = %d, want 3", feat)
	}
	if cols := binary.LittleEndian.Uint32(p[8:12]); cols != 4 {
		t.Fatalf("cols at payload offset 8 = %d, want 4", cols)
	}
	// Row records start at payload offset 12: dense = kind 0 + raw bits.
	if p[12] != kindDense {
		t.Fatalf("row 0 kind at payload offset 12 = %d, want 0 (dense)", p[12])
	}
	if got := math.Float64frombits(binary.LittleEndian.Uint64(p[13:21])); got != 1.5 {
		t.Fatalf("row 0 value 0 at payload offset 13 = %v, want raw IEEE-754 1.5", got)
	}
	// Sparse record: kind 1 at 12+1+24 = 37, nnz u32, indices, values.
	if p[37] != kindSparse {
		t.Fatalf("row 1 kind at payload offset 37 = %d, want 1 (sparse)", p[37])
	}
	if nnz := binary.LittleEndian.Uint32(p[38:42]); nnz != 2 {
		t.Fatalf("row 1 nnz at payload offset 38 = %d, want 2", nnz)
	}
	if j := binary.LittleEndian.Uint32(p[42:46]); j != 0 {
		t.Fatalf("row 1 index 0 = %d, want 0", j)
	}
	if got := math.Float64frombits(binary.LittleEndian.Uint64(p[50:58])); got != 0.5 {
		t.Fatalf("row 1 value 0 at payload offset 50 = %v, want 0.5", got)
	}
	if len(p) != 66 {
		t.Fatalf("payload is %d bytes, spec arithmetic says 12 + 25 + 29 = 66", len(p))
	}
}

// TestBatchRoundTrip checks encode→decode preserves rows, kinds, and
// every float64 bit for mixed batches.
func TestBatchRoundTrip(t *testing.T) {
	var e Encoder
	f := buildBatchFrame(&e)
	h, err := ParseHeader(f)
	if err != nil {
		t.Fatal(err)
	}
	if h.Op != OpScores || h.Corr != 42 {
		t.Fatalf("header %+v", h)
	}
	var b Batch
	if err := b.Decode(f[HeaderSize:]); err != nil {
		t.Fatal(err)
	}
	if b.Rows() != 2 || b.Features != 3 || b.Cols != 4 {
		t.Fatalf("decoded shape rows=%d features=%d cols=%d", b.Rows(), b.Features, b.Cols)
	}
	if b.Kind[0] || !b.Kind[1] {
		t.Fatalf("kinds %v, want [dense sparse]", b.Kind)
	}
	wantDense := []float64{1.5, -2.25, math.Pi}
	for i, v := range b.Dense[0] {
		if v != wantDense[i] {
			t.Fatalf("dense[0][%d] = %v, want %v (bitwise)", i, v, wantDense[i])
		}
	}
	if b.Idx[0][0] != 0 || b.Idx[0][1] != 2 || b.Val[0][0] != 0.5 || b.Val[0][1] != -0.125 {
		t.Fatalf("sparse row: idx=%v val=%v", b.Idx[0], b.Val[0])
	}
}

// TestResponseRoundTrips covers every response payload kind.
func TestResponseRoundTrips(t *testing.T) {
	var e Encoder

	e.Begin(OpPredictResp, 7)
	e.PredictResp(3, []int{4, 0, 9})
	out := make([]int, 3)
	v, n, err := DecodePredictResp(e.Bytes()[HeaderSize:], out)
	if err != nil || v != 3 || n != 3 || out[0] != 4 || out[2] != 9 {
		t.Fatalf("predict: v=%d n=%d out=%v err=%v", v, n, out, err)
	}

	vals := []float64{0.25, 0.75, -1.5, math.Inf(1), math.SmallestNonzeroFloat64, 0}
	e.Begin(OpScoresResp, 8)
	e.FloatsResp(5, 2, 3, vals)
	got := make([]float64, 6)
	v, rows, cols, err := DecodeFloatsResp(e.Bytes()[HeaderSize:], got)
	if err != nil || v != 5 || rows != 2 || cols != 3 {
		t.Fatalf("floats: v=%d %dx%d err=%v", v, rows, cols, err)
	}
	for i := range vals {
		if got[i] != vals[i] {
			t.Fatalf("floats[%d] = %v, want %v (bitwise)", i, got[i], vals[i])
		}
	}

	m := Meta{Version: 9, Classes: 5, Features: 33, ShardIndex: 1, ShardCount: 2, ShardLow: 2, ShardHigh: 4, TotalClasses: 10, Zone: "rack-a"}
	e.Begin(OpMetaResp, 9)
	e.MetaResp(m)
	gm, err := DecodeMetaResp(e.Bytes()[HeaderSize:])
	if err != nil || gm != m {
		t.Fatalf("meta: %+v err=%v, want %+v", gm, err, m)
	}

	// Legacy peers emit the 36-byte fixed payload with no zone trailer;
	// the decoder must accept it with Zone "".
	legacy := e.Bytes()[HeaderSize : HeaderSize+36]
	gm, err = DecodeMetaResp(legacy)
	if err != nil || gm.Zone != "" || gm.Version != m.Version || gm.TotalClasses != m.TotalClasses {
		t.Fatalf("legacy meta: %+v err=%v", gm, err)
	}

	e.Begin(OpReloadResp, 10)
	e.ReloadResp(12)
	rv, err := DecodeReloadResp(e.Bytes()[HeaderSize:])
	if err != nil || rv != 12 {
		t.Fatalf("reload: v=%d err=%v", rv, err)
	}

	e.Begin(OpError, 11)
	e.Error(CodeQueueFull, "admission queue full")
	code, msg, err := DecodeError(e.Bytes()[HeaderSize:])
	if err != nil || code != CodeQueueFull || msg != "admission queue full" {
		t.Fatalf("error frame: code=%d msg=%q err=%v", code, msg, err)
	}

	// Oversized messages truncate rather than bloat the frame.
	e.Begin(OpError, 12)
	e.Error(CodeInternal, strings.Repeat("x", 2000))
	_, msg, err = DecodeError(e.Bytes()[HeaderSize:])
	if err != nil || len(msg) != 512 {
		t.Fatalf("long error message: len=%d err=%v, want 512", len(msg), err)
	}

	// The decoder enforces the spec's msgLen <= 512 bound on frames a
	// conforming encoder would never produce.
	over := make([]byte, 4+600)
	binary.LittleEndian.PutUint16(over[0:2], uint16(CodeInternal))
	binary.LittleEndian.PutUint16(over[2:4], 600)
	if _, _, err := DecodeError(over); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("msgLen over spec bound: got %v, want ErrBadFrame", err)
	}
}

// TestMalformedHeaders checks every header-level rejection the spec
// requires: short reads, bad magic, wrong version, unknown flag bits,
// and an oversized length prefix. Flag bits 0 (FlagTrace) and 1
// (FlagPriority) are legal and must NOT be rejected.
func TestMalformedHeaders(t *testing.T) {
	var e Encoder
	good := append([]byte(nil), buildBatchFrame(&e)...)

	mutate := func(name string, f func(b []byte)) {
		b := append([]byte(nil), good...)
		f(b)
		if _, err := ParseHeader(b); !errors.Is(err, ErrBadFrame) {
			t.Errorf("%s: got %v, want ErrBadFrame", name, err)
		}
	}
	mutate("bad magic", func(b []byte) { b[0] = 'X' })
	mutate("bad version", func(b []byte) { b[4] = 99 })
	mutate("unknown flag bit 2", func(b []byte) { b[6] = 4 })
	mutate("unknown flag high byte", func(b []byte) { b[7] = 1 })
	mutate("oversized length", func(b []byte) {
		binary.LittleEndian.PutUint32(b[16:20], MaxPayload+1)
	})
	if _, err := ParseHeader(good[:HeaderSize-1]); !errors.Is(err, ErrBadFrame) {
		t.Errorf("short header: got %v, want ErrBadFrame", err)
	}

	// FlagTrace and FlagPriority (alone or together) are version-1
	// frames, not protocol errors.
	for _, flags := range []uint16{FlagTrace, FlagPriority, FlagTrace | FlagPriority} {
		flagged := append([]byte(nil), good...)
		binary.LittleEndian.PutUint16(flagged[6:8], flags)
		h, err := ParseHeader(flagged)
		if err != nil {
			t.Fatalf("flags %#x frame rejected: %v", flags, err)
		}
		if h.Flags != flags {
			t.Fatalf("parsed flags = %#x, want %#x", h.Flags, flags)
		}
	}
}

// TestTruncatedFrames checks a stream that dies mid-frame surfaces an
// error from Reader.Next rather than a short payload, and that payload
// decoders reject every truncation point without panicking.
func TestTruncatedFrames(t *testing.T) {
	var e Encoder
	good := append([]byte(nil), buildBatchFrame(&e)...)

	// Stream truncated inside the payload: the header promised more.
	r := NewReader(bytes.NewReader(good[:len(good)-5]))
	if _, _, err := r.Next(); err == nil {
		t.Fatal("reader accepted a truncated payload")
	}
	// Stream truncated inside the header.
	r = NewReader(bytes.NewReader(good[:7]))
	if _, _, err := r.Next(); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("truncated header: got %v, want ErrUnexpectedEOF", err)
	}

	// Every proper prefix of the batch payload must decode to an error.
	payload := good[HeaderSize:]
	var b Batch
	for cut := 0; cut < len(payload); cut++ {
		if err := b.Decode(payload[:cut]); err == nil {
			t.Fatalf("accepted batch payload truncated to %d of %d bytes", cut, len(payload))
		}
	}
	// Unknown row kind.
	bad := append([]byte(nil), payload...)
	bad[12] = 7
	if err := b.Decode(bad); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("unknown kind: got %v, want ErrBadFrame", err)
	}
	// Trailing garbage after the last record.
	if err := b.Decode(append(append([]byte(nil), payload...), 0xEE)); !errors.Is(err, ErrBadFrame) {
		t.Fatal("accepted trailing payload bytes")
	}
	// A lying row count cannot drive an allocation storm.
	lying := append([]byte(nil), payload...)
	binary.LittleEndian.PutUint32(lying[0:4], 1<<30)
	if err := b.Decode(lying); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("lying row count: got %v, want ErrBadFrame", err)
	}
	// Zero-feature row-record flood: each record is one byte, so the
	// payload bound alone would admit millions of rows; the spec's
	// MaxRows bound must reject it before any output-side allocation.
	flood := make([]byte, 12+MaxRows+1)
	binary.LittleEndian.PutUint32(flood[0:4], MaxRows+1)
	if err := b.Decode(flood); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("row flood: got %v, want ErrBadFrame", err)
	}
	// Exactly MaxRows of zero-feature dense records is within spec.
	legal := make([]byte, 12+MaxRows)
	binary.LittleEndian.PutUint32(legal[0:4], MaxRows)
	if err := b.Decode(legal); err != nil {
		t.Fatalf("MaxRows batch rejected: %v", err)
	}
}

// TestReaderReusesPayloadBuffer checks Next is zero-alloc once the
// payload buffer reached its high-water size, and that each frame's
// payload view stays valid until the following Next.
func TestReaderReusesPayloadBuffer(t *testing.T) {
	var e Encoder
	frame := append([]byte(nil), buildBatchFrame(&e)...)
	const n = 8
	// n+1 copies: one manual warm-up read, then AllocsPerRun's own
	// warm-up call plus n-1 measured calls.
	stream := bytes.Repeat(frame, n+1)
	r := NewReader(bytes.NewReader(stream))
	if _, _, err := r.Next(); err != nil { // warm the buffer
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(n-1, func() {
		if _, p, err := r.Next(); err != nil || len(p) != len(frame)-HeaderSize {
			t.Fatalf("next: %v", err)
		}
	})
	if allocs != 0 {
		t.Fatalf("Reader.Next allocated %.1f times per frame at steady state, want 0", allocs)
	}
}

// TestEncodeDecodeZeroAllocSteadyState is the data-plane allocation
// contract from the acceptance criteria: once buffers are warm, a full
// batch encode and a full batch decode perform zero heap allocations,
// and so do the scores-response encode/decode pair.
func TestEncodeDecodeZeroAllocSteadyState(t *testing.T) {
	dense := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	idx := []int{1, 3, 5}
	val := []float64{0.5, 0.25, -0.75}

	var e Encoder
	encode := func() []byte {
		e.Begin(OpPredict, 1)
		e.BatchHeader(4, len(dense), 0)
		e.DenseRow(dense)
		e.SparseRow(idx, val)
		e.DenseRow(dense)
		e.SparseRow(idx, val)
		return e.Bytes()
	}
	frame := append([]byte(nil), encode()...) // warm + stable copy
	if allocs := testing.AllocsPerRun(100, func() { encode() }); allocs != 0 {
		t.Fatalf("batch encode: %.1f allocs/op at steady state, want 0", allocs)
	}

	var b Batch
	if err := b.Decode(frame[HeaderSize:]); err != nil { // warm
		t.Fatal(err)
	}
	if allocs := testing.AllocsPerRun(100, func() {
		if err := b.Decode(frame[HeaderSize:]); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Fatalf("batch decode: %.1f allocs/op at steady state, want 0", allocs)
	}

	scores := make([]float64, 4*3)
	var er Encoder
	encodeResp := func() []byte {
		er.Begin(OpScoresResp, 2)
		er.FloatsResp(1, 4, 3, scores)
		return er.Bytes()
	}
	respFrame := append([]byte(nil), encodeResp()...)
	if allocs := testing.AllocsPerRun(100, func() { encodeResp() }); allocs != 0 {
		t.Fatalf("scores encode: %.1f allocs/op at steady state, want 0", allocs)
	}
	out := make([]float64, 4*3)
	if allocs := testing.AllocsPerRun(100, func() {
		if _, _, _, err := DecodeFloatsResp(respFrame[HeaderSize:], out); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Fatalf("scores decode: %.1f allocs/op at steady state, want 0", allocs)
	}
}
