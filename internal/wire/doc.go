// Package wire is the binary frame protocol of the serving fleet's
// router↔replica data plane: a length-prefixed, little-endian framing
// over a plain TCP stream that replaces the JSON/HTTP hop of the
// scatter-gather tier for the request kinds that dominate its traffic
// (predict, proba, partial scores, meta probe, reload).
//
// DESIGN.md's "Binary data plane" section is the normative
// specification — frame layout, field offsets, payload encodings, and
// error-frame semantics live there, and the decoder tests in this
// package reference its offsets. This package implements it:
//
//   - Header/PutHeader/ParseHeader: the fixed 20-byte frame header
//     (magic, version, opcode, flags, correlation ID, payload length).
//   - Encoder: builds one frame in a grow-only buffer — batch requests
//     (mixed dense/sparse float64 rows, written as raw IEEE-754 bits)
//     and every response kind. Steady-state encodes allocate nothing.
//   - Reader: reads frames off a stream into a grow-only payload
//     buffer; Batch and the Decode* functions parse payloads into
//     reusable staging, so steady-state decodes allocate nothing
//     either (both pinned by AllocsPerRun tests).
//
// Invariants the rest of the serving stack relies on:
//
//   - Bitwise float64 transport. Row values and score/probability
//     tiles cross the wire as raw IEEE-754 bits, so the class-sharded
//     merge stays bitwise identical to single-node scoring — the same
//     guarantee encoding/json provides on the JSON plane, without the
//     encode/decode cost.
//   - Correlation IDs. Every response echoes its request's ID, so a
//     client may pipeline many requests on one connection and match
//     answers out of order (the router's TCPBackend multiplexes
//     concurrent scatters over a small pool of persistent
//     connections).
//   - Version headers. Scores responses carry the model snapshot
//     version they were computed against, giving the router the same
//     ErrVersionSkew detection the JSON plane's model_version field
//     provides; error frames carry the same error taxonomy the HTTP
//     status mapping encodes (queue-full, no-model, shape-changed, ...).
//
// The package depends only on the standard library: internal/serve
// hosts the server side (FrameServer) and internal/router the client
// side (TCPBackend).
package wire
