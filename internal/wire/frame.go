package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Framing constants. DESIGN.md ("Binary data plane") is the normative
// spec; the tests in this package assert these values against the field
// offsets it documents.
const (
	// Version is the protocol version carried at header offset 4. A
	// frame with any other version is rejected before its payload is
	// read.
	Version = 1
	// HeaderSize is the fixed frame-header length in bytes.
	HeaderSize = 20
	// MaxPayload bounds the payload length a decoder will accept
	// (64 MiB). A header announcing more is a protocol error, so a
	// corrupt or hostile length prefix cannot drive an allocation storm.
	MaxPayload = 1 << 26
	// MaxRows bounds a batch request's row count (65536). Row records
	// can be as small as one byte (a zero-feature dense row), so the
	// payload bound alone would let a 64 MiB frame announce tens of
	// millions of rows and drive output-side allocations (per-row slice
	// headers, rows×classes staging) far beyond the frame's own size.
	MaxRows = 1 << 16
)

// Header flag bits (offset 6, uint16 LE). Bits not listed here are
// reserved and must be zero; a frame carrying an unknown bit is
// rejected, so every future bit is a deliberate protocol revision.
const (
	// FlagTrace marks a frame whose payload ends with the 9-byte trace
	// trailer (u64 trace ID LE + u8 sampled). The trailer bytes are
	// included in the header's length field; decoders strip them before
	// interpreting the payload (SplitTraceTrailer). Frames without the
	// bit are byte-identical to pre-trace frames, so legacy peers
	// decode untraced traffic unchanged.
	FlagTrace uint16 = 1 << 0

	// FlagPriority marks a frame carrying the 1-byte priority trailer
	// (service class 0..2) immediately before the trace trailer (or at
	// the payload end when FlagTrace is unset). Decode order is fixed:
	// strip the trace trailer first, then the priority byte
	// (SplitPriorityTrailer). Frames without the bit default to the
	// interactive class and stay byte-identical to pre-priority frames.
	FlagPriority uint16 = 1 << 1

	// knownFlags is the mask of bits a version-1 decoder understands.
	knownFlags = FlagTrace | FlagPriority
)

// TraceTrailerSize is the byte length of the trace trailer a FlagTrace
// frame carries at the end of its payload.
const TraceTrailerSize = 9

// PriorityTrailerSize is the byte length of the priority trailer a
// FlagPriority frame carries before the trace trailer.
const PriorityTrailerSize = 1

// magic opens every frame: bytes 'N','A','W','P' at offsets 0..3.
var magic = [4]byte{'N', 'A', 'W', 'P'}

// Op is the frame opcode at header offset 5. Requests have the high bit
// clear; a response's opcode is its request's with RespBit set.
type Op uint8

// Request and response opcodes.
const (
	OpPredict Op = 0x01 // batch request → predicted classes
	OpProba   Op = 0x02 // batch request → class probabilities
	OpScores  Op = 0x03 // batch request → partial explicit-class logits
	OpMeta    Op = 0x04 // empty request → model snapshot metadata
	OpReload  Op = 0x05 // empty request → hot-swap the checkpoint

	// RespBit marks a frame as the response to the request opcode in
	// its low bits.
	RespBit Op = 0x80

	OpPredictResp Op = OpPredict | RespBit
	OpProbaResp   Op = OpProba | RespBit
	OpScoresResp  Op = OpScores | RespBit
	OpMetaResp    Op = OpMeta | RespBit
	OpReloadResp  Op = OpReload | RespBit

	// OpError is the error response to any request; its payload carries
	// an ErrCode plus a human-readable message.
	OpError Op = 0xFF
)

// ErrCode classifies an error frame, mirroring the HTTP status mapping
// of the JSON plane so both data planes surface the same error taxonomy
// to the router.
type ErrCode uint16

const (
	// CodeBadRequest is a deterministic request problem (bad shapes, bad
	// indices) — the 400 class. Retrying on another replica cannot help.
	CodeBadRequest ErrCode = 1
	// CodeQueueFull is admission-queue backpressure — the 429 class. A
	// router fails over without marking the replica down.
	CodeQueueFull ErrCode = 2
	// CodeNoModel means the replica holds no model snapshot — 503.
	CodeNoModel ErrCode = 3
	// CodeShapeChanged means a hot swap changed the model shape behind
	// the caller's back — 503, retry sees the settled shape.
	CodeShapeChanged ErrCode = 4
	// CodeClosed means the replica is shutting down — 503.
	CodeClosed ErrCode = 5
	// CodeNotImplemented means the operation is unsupported here (e.g.
	// reload without a configured reloader) — 501.
	CodeNotImplemented ErrCode = 6
	// CodeInternal is an unexpected server-side failure — 500.
	CodeInternal ErrCode = 7
)

// ErrDetail refines an error frame's code with the admission-control
// rejection reason, carried in the optional detail trailer of an
// OpError payload (Encoder.ErrorDetail). The numbering mirrors the
// JSON plane's machine-readable `reason` field.
type ErrDetail uint16

const (
	// DetailNone means the frame carried no detail trailer (or none
	// applies).
	DetailNone ErrDetail = 0
	// DetailQueueFull: the bounded admission queue was at capacity.
	DetailQueueFull ErrDetail = 1
	// DetailRateLimited: a token-bucket admission policy refused the
	// request.
	DetailRateLimited ErrDetail = 2
	// DetailCostRejected: a cost-aware admission policy refused the
	// request's rows x features price.
	DetailCostRejected ErrDetail = 3
)

// ErrBadFrame tags every framing-level decode failure (bad magic,
// version, flags, truncated or oversized payloads). It is a protocol
// error: the connection that produced it cannot be resynchronized and
// must be closed.
var ErrBadFrame = errors.New("wire: malformed frame")

// Header is the decoded fixed-size frame header:
//
//	offset 0  magic   "NAWP"
//	offset 4  version uint8  (= Version)
//	offset 5  opcode  uint8
//	offset 6  flags   uint16 LE (bit 0 = trace trailer present, bit 1 =
//	          priority trailer present; all other bits reserved, must
//	          be zero)
//	offset 8  corr    uint64 LE (correlation ID, echoed by responses)
//	offset 16 length  uint32 LE (payload bytes following the header)
type Header struct {
	Op    Op
	Flags uint16
	Corr  uint64
	Len   uint32
}

// PutHeader writes h into dst[:HeaderSize].
func PutHeader(dst []byte, h Header) {
	_ = dst[HeaderSize-1]
	copy(dst, magic[:])
	dst[4] = Version
	dst[5] = byte(h.Op)
	binary.LittleEndian.PutUint16(dst[6:8], h.Flags)
	binary.LittleEndian.PutUint64(dst[8:16], h.Corr)
	binary.LittleEndian.PutUint32(dst[16:20], h.Len)
}

// ParseHeader decodes and validates src[:HeaderSize]. Failures wrap
// ErrBadFrame: the stream is unrecoverable and must be closed.
func ParseHeader(src []byte) (Header, error) {
	if len(src) < HeaderSize {
		return Header{}, fmt.Errorf("%w: %d header bytes, need %d", ErrBadFrame, len(src), HeaderSize)
	}
	if src[0] != magic[0] || src[1] != magic[1] || src[2] != magic[2] || src[3] != magic[3] {
		return Header{}, fmt.Errorf("%w: bad magic %q", ErrBadFrame, src[0:4])
	}
	if src[4] != Version {
		return Header{}, fmt.Errorf("%w: protocol version %d, speak %d", ErrBadFrame, src[4], Version)
	}
	flags := binary.LittleEndian.Uint16(src[6:8])
	if flags&^knownFlags != 0 {
		return Header{}, fmt.Errorf("%w: unknown flags %#x", ErrBadFrame, flags&^knownFlags)
	}
	h := Header{
		Op:    Op(src[5]),
		Flags: flags,
		Corr:  binary.LittleEndian.Uint64(src[8:16]),
		Len:   binary.LittleEndian.Uint32(src[16:20]),
	}
	if h.Len > MaxPayload {
		return Header{}, fmt.Errorf("%w: payload length %d exceeds %d", ErrBadFrame, h.Len, MaxPayload)
	}
	return h, nil
}

// Reader reads frames off a byte stream. The payload buffer is
// grow-only and reused: the slice returned by Next is valid until the
// following Next call, so steady-state reads allocate nothing.
type Reader struct {
	r       io.Reader
	hdr     [HeaderSize]byte
	payload []byte
}

// NewReader wraps r (typically a bufio.Reader over a net.Conn).
func NewReader(r io.Reader) *Reader { return &Reader{r: r} }

// Next reads one frame and returns its header and payload view. A
// framing error (wrapped ErrBadFrame) or any I/O error means the stream
// is dead; the caller must close the connection.
func (fr *Reader) Next() (Header, []byte, error) {
	if _, err := io.ReadFull(fr.r, fr.hdr[:]); err != nil {
		return Header{}, nil, err
	}
	h, err := ParseHeader(fr.hdr[:])
	if err != nil {
		return Header{}, nil, err
	}
	if cap(fr.payload) < int(h.Len) {
		fr.payload = make([]byte, h.Len)
	}
	p := fr.payload[:h.Len:cap(fr.payload)]
	if _, err := io.ReadFull(fr.r, p); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF // header promised h.Len payload bytes
		}
		return Header{}, nil, fmt.Errorf("%w: truncated payload: %v", ErrBadFrame, err)
	}
	return h, p, nil
}
