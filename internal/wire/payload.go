package wire

import (
	"encoding/binary"
	"fmt"
	"math"
	"time"
)

// Meta is the wire form of a replica's model snapshot metadata
// (MetaResp payload, 36 bytes of fixed fields plus a length-prefixed
// zone trailer — see DESIGN.md for the offsets). Shard fields are zero
// for a full replica.
type Meta struct {
	Version    int64
	Classes    int
	Features   int
	ShardIndex int
	ShardCount int
	ShardLow   int
	ShardHigh  int
	// TotalClasses is the full model's class count a shard belongs to.
	TotalClasses int
	// Zone is the replica's placement zone/rack label ("" when the
	// operator did not declare one); routers read it to validate the
	// zone-spread invariant of replicated shard groups.
	Zone string
}

// Row-record kind bytes inside a batch request payload.
const (
	kindDense  = 0
	kindSparse = 1
)

// Encoder builds one frame at a time in a grow-only buffer, so
// steady-state encodes allocate nothing. Usage: Begin, then exactly one
// payload-builder sequence, then Bytes (which patches the payload
// length into the header). An Encoder is not safe for concurrent use.
type Encoder struct {
	buf []byte
}

// Begin starts a frame with the given opcode and correlation ID.
func (e *Encoder) Begin(op Op, corr uint64) {
	if cap(e.buf) < HeaderSize {
		e.buf = make([]byte, HeaderSize, 1024)
	}
	e.buf = e.buf[:HeaderSize]
	PutHeader(e.buf, Header{Op: op, Corr: corr})
}

// Bytes patches the payload length into the header and returns the
// complete frame, valid until the next Begin.
func (e *Encoder) Bytes() []byte {
	binary.LittleEndian.PutUint32(e.buf[16:20], uint32(len(e.buf)-HeaderSize))
	return e.buf
}

func (e *Encoder) u8(v uint8) { e.buf = append(e.buf, v) }

func (e *Encoder) u32(v uint32) {
	e.buf = binary.LittleEndian.AppendUint32(e.buf, v)
}

func (e *Encoder) u64(v uint64) {
	e.buf = binary.LittleEndian.AppendUint64(e.buf, v)
}

func (e *Encoder) f64s(vs []float64) {
	for _, v := range vs {
		e.u64(math.Float64bits(v))
	}
}

// BatchHeader opens a batch request payload (OpPredict / OpProba /
// OpScores): row count, dense feature width, and — for OpScores — the
// shard width the caller planned (0 otherwise). Every dense row added
// afterwards must have exactly features values.
func (e *Encoder) BatchHeader(rows, features, cols int) {
	e.u32(uint32(rows))
	e.u32(uint32(features))
	e.u32(uint32(cols))
}

// DenseRow appends one dense row record: kind byte 0 followed by the
// row's raw IEEE-754 bits.
func (e *Encoder) DenseRow(row []float64) {
	e.u8(kindDense)
	e.f64s(row)
}

// SparseRow appends one sparse row record: kind byte 1, nonzero count,
// column indices, then values.
func (e *Encoder) SparseRow(idx []int, val []float64) {
	e.u8(kindSparse)
	e.u32(uint32(len(idx)))
	for _, j := range idx {
		e.u32(uint32(j))
	}
	e.f64s(val)
}

// PredictResp writes an OpPredictResp payload: snapshot version, row
// count, and one int32 class per row.
func (e *Encoder) PredictResp(version int64, classes []int) {
	e.u64(uint64(version))
	e.u32(uint32(len(classes)))
	for _, c := range classes {
		e.u32(uint32(int32(c)))
	}
}

// FloatsResp writes an OpProbaResp or OpScoresResp payload: snapshot
// version, rows, cols, then the rows×cols row-major float64 tile as raw
// bits (probabilities with cols = Classes, partial scores with cols =
// the shard's explicit-class width).
func (e *Encoder) FloatsResp(version int64, rows, cols int, vals []float64) {
	e.u64(uint64(version))
	e.u32(uint32(rows))
	e.u32(uint32(cols))
	e.f64s(vals[:rows*cols])
}

// MetaResp writes an OpMetaResp payload: the 36 fixed bytes followed by
// the zone trailer (u16 length + bytes, truncated to 256).
func (e *Encoder) MetaResp(m Meta) {
	e.u64(uint64(m.Version))
	e.u32(uint32(m.Classes))
	e.u32(uint32(m.Features))
	e.u32(uint32(m.ShardIndex))
	e.u32(uint32(m.ShardCount))
	e.u32(uint32(m.ShardLow))
	e.u32(uint32(m.ShardHigh))
	e.u32(uint32(m.TotalClasses))
	zone := m.Zone
	if len(zone) > 256 {
		zone = zone[:256]
	}
	e.buf = binary.LittleEndian.AppendUint16(e.buf, uint16(len(zone)))
	e.buf = append(e.buf, zone...)
}

// ReloadResp writes an OpReloadResp payload: the deployed version.
func (e *Encoder) ReloadResp(version int64) { e.u64(uint64(version)) }

// Error writes an OpError payload: code, message length, message. The
// message is truncated to 512 bytes so an error path cannot balloon a
// frame.
func (e *Encoder) Error(code ErrCode, msg string) {
	if len(msg) > 512 {
		msg = msg[:512]
	}
	e.buf = binary.LittleEndian.AppendUint16(e.buf, uint16(code))
	e.buf = binary.LittleEndian.AppendUint16(e.buf, uint16(len(msg)))
	e.buf = append(e.buf, msg...)
}

// ErrorDetail writes an OpError payload with the optional detail
// trailer after the message: detail u16 (an ErrDetail rejection
// reason) plus retry-after u32 in milliseconds (0 = no hint). Decoders
// accept both layouts (DecodeErrorDetail); detail DetailNone emits the
// legacy payload.
func (e *Encoder) ErrorDetail(code ErrCode, msg string, detail ErrDetail, retryAfter time.Duration) {
	e.Error(code, msg)
	if detail == DetailNone {
		return
	}
	millis := retryAfter.Milliseconds()
	if retryAfter > 0 && millis == 0 {
		millis = 1 // a sub-millisecond hint still means "retry later"
	}
	if millis < 0 {
		millis = 0
	}
	if millis > math.MaxUint32 {
		millis = math.MaxUint32
	}
	e.buf = binary.LittleEndian.AppendUint16(e.buf, uint16(detail))
	e.u32(uint32(millis))
}

// reader walks a payload with bounds checking; every decode failure
// wraps ErrBadFrame.
type reader struct {
	p   []byte
	off int
}

func (r *reader) need(n int) error {
	if len(r.p)-r.off < n {
		return fmt.Errorf("%w: payload truncated at offset %d (need %d of %d bytes)", ErrBadFrame, r.off, n, len(r.p))
	}
	return nil
}

func (r *reader) u8() (uint8, error) {
	if err := r.need(1); err != nil {
		return 0, err
	}
	v := r.p[r.off]
	r.off++
	return v, nil
}

func (r *reader) u32() (uint32, error) {
	if err := r.need(4); err != nil {
		return 0, err
	}
	v := binary.LittleEndian.Uint32(r.p[r.off:])
	r.off += 4
	return v, nil
}

func (r *reader) u64() (uint64, error) {
	if err := r.need(8); err != nil {
		return 0, err
	}
	v := binary.LittleEndian.Uint64(r.p[r.off:])
	r.off += 8
	return v, nil
}

func (r *reader) f64s(dst []float64) error {
	if err := r.need(8 * len(dst)); err != nil {
		return err
	}
	for i := range dst {
		dst[i] = math.Float64frombits(binary.LittleEndian.Uint64(r.p[r.off:]))
		r.off += 8
	}
	return nil
}

func (r *reader) done() error {
	if r.off != len(r.p) {
		return fmt.Errorf("%w: %d trailing payload bytes", ErrBadFrame, len(r.p)-r.off)
	}
	return nil
}

// Batch is a decoded batch request staged in the per-kind form the
// serving stack scores (dense rows for Predictor.ScoresDense /
// Batcher.SubmitDense, index/value pairs for the CSR twins), with the
// arrival order retained in Kind. All backing buffers are grow-only:
// steady-state decodes allocate nothing.
type Batch struct {
	Features int    // dense feature width announced by the request
	Cols     int    // OpScores: shard width the client planned (0 otherwise)
	Kind     []bool // per arrival row: true = sparse
	Dense    [][]float64
	Idx      [][]int
	Val      [][]float64

	denseBuf []float64
	idxBuf   []int
	valBuf   []float64
}

// Decode parses a batch request payload (the bytes after the frame
// header of an OpPredict/OpProba/OpScores request), reusing the batch's
// backing buffers. On error the batch contents are undefined.
func (b *Batch) Decode(p []byte) error {
	b.Kind = b.Kind[:0]
	b.Dense = b.Dense[:0]
	b.Idx = b.Idx[:0]
	b.Val = b.Val[:0]

	r := reader{p: p}
	rows, err := r.u32()
	if err != nil {
		return err
	}
	features, err := r.u32()
	if err != nil {
		return err
	}
	cols, err := r.u32()
	if err != nil {
		return err
	}
	// A row record is at least 1 byte, so rows > len(p) is provably
	// truncated; this caps the sizing pass before any buffer grows.
	if int(rows) > len(p) {
		return fmt.Errorf("%w: %d rows in a %d-byte payload", ErrBadFrame, rows, len(p))
	}
	// MaxRows bounds what the row count alone can make the *output*
	// side allocate (per-row headers here, rows×classes staging in the
	// server) — the payload bound does not, because records can be a
	// single byte.
	if rows > MaxRows {
		return fmt.Errorf("%w: %d rows exceeds %d", ErrBadFrame, rows, MaxRows)
	}
	if features > MaxPayload/8 {
		return fmt.Errorf("%w: feature width %d", ErrBadFrame, features)
	}
	b.Features, b.Cols = int(features), int(cols)

	// Sizing pass: walk the records once to bound the flat buffers, so
	// the fill pass never reallocates mid-way (row views must stay
	// valid) and a lying header cannot oversize an allocation.
	denseRows, nnzTotal := 0, 0
	rs := r
	for i := 0; i < int(rows); i++ {
		kind, err := rs.u8()
		if err != nil {
			return err
		}
		switch kind {
		case kindDense:
			denseRows++
			rs.off += 8 * int(features)
			if rs.off > len(p) {
				return fmt.Errorf("%w: dense row %d truncated", ErrBadFrame, i)
			}
		case kindSparse:
			nnz, err := rs.u32()
			if err != nil {
				return err
			}
			nnzTotal += int(nnz)
			rs.off += 12 * int(nnz)
			if rs.off > len(p) || int(nnz) > len(p) {
				return fmt.Errorf("%w: sparse row %d truncated", ErrBadFrame, i)
			}
		default:
			return fmt.Errorf("%w: row %d has unknown kind %d", ErrBadFrame, i, kind)
		}
	}
	if err := rs.done(); err != nil {
		return err
	}

	if need := denseRows * int(features); cap(b.denseBuf) < need {
		b.denseBuf = make([]float64, need)
	}
	if cap(b.idxBuf) < nnzTotal {
		b.idxBuf = make([]int, nnzTotal)
	}
	if cap(b.valBuf) < nnzTotal {
		b.valBuf = make([]float64, nnzTotal)
	}

	// Fill pass: decode rows into stable views of the flat buffers.
	dOff, sOff := 0, 0
	for i := 0; i < int(rows); i++ {
		kind, _ := r.u8()
		if kind == kindDense {
			row := b.denseBuf[dOff : dOff+int(features)]
			if err := r.f64s(row); err != nil {
				return err
			}
			dOff += int(features)
			b.Kind = append(b.Kind, false)
			b.Dense = append(b.Dense, row)
			continue
		}
		nnz32, _ := r.u32()
		nnz := int(nnz32)
		idx := b.idxBuf[sOff : sOff+nnz]
		for k := range idx {
			j, err := r.u32()
			if err != nil {
				return err
			}
			idx[k] = int(int32(j))
		}
		val := b.valBuf[sOff : sOff+nnz]
		if err := r.f64s(val); err != nil {
			return err
		}
		sOff += nnz
		b.Kind = append(b.Kind, true)
		b.Idx = append(b.Idx, idx)
		b.Val = append(b.Val, val)
	}
	return nil
}

// Rows returns the decoded batch's row count in arrival order.
func (b *Batch) Rows() int { return len(b.Kind) }

// DecodePredictResp parses an OpPredictResp payload into out, returning
// the snapshot version and row count. out must hold every row.
func DecodePredictResp(p []byte, out []int) (version int64, rows int, err error) {
	r := reader{p: p}
	v, err := r.u64()
	if err != nil {
		return 0, 0, err
	}
	n, err := r.u32()
	if err != nil {
		return 0, 0, err
	}
	if int(n) > len(out) {
		return 0, 0, fmt.Errorf("wire: %d predictions for a %d-slot buffer", n, len(out))
	}
	if err := r.need(4 * int(n)); err != nil {
		return 0, 0, err
	}
	for i := 0; i < int(n); i++ {
		c, _ := r.u32()
		out[i] = int(int32(c))
	}
	if err := r.done(); err != nil {
		return 0, 0, err
	}
	return int64(v), int(n), nil
}

// DecodeFloatsResp parses an OpProbaResp/OpScoresResp payload into out,
// returning the snapshot version and tile shape. out must hold
// rows×cols values.
func DecodeFloatsResp(p []byte, out []float64) (version int64, rows, cols int, err error) {
	r := reader{p: p}
	v, err := r.u64()
	if err != nil {
		return 0, 0, 0, err
	}
	nr, err := r.u32()
	if err != nil {
		return 0, 0, 0, err
	}
	nc, err := r.u32()
	if err != nil {
		return 0, 0, 0, err
	}
	// Bound the factors before multiplying so a hostile header cannot
	// overflow the size arithmetic past the bounds check.
	if nr > MaxPayload/8 || nc > MaxPayload/8 {
		return 0, 0, 0, fmt.Errorf("%w: implausible tile %dx%d", ErrBadFrame, nr, nc)
	}
	if err := r.need(8 * int(nr) * int(nc)); err != nil {
		return 0, 0, 0, err
	}
	if n := int(nr) * int(nc); n > len(out) {
		return 0, 0, 0, fmt.Errorf("wire: %dx%d tile for a %d-slot buffer", nr, nc, len(out))
	}
	if err := r.f64s(out[:int(nr)*int(nc)]); err != nil {
		return 0, 0, 0, err
	}
	if err := r.done(); err != nil {
		return 0, 0, 0, err
	}
	return int64(v), int(nr), int(nc), nil
}

// DecodeMetaResp parses an OpMetaResp payload. The zone trailer is
// optional on the decode side: a 36-byte payload from a pre-zone
// encoder yields Zone "".
func DecodeMetaResp(p []byte) (Meta, error) {
	r := reader{p: p}
	v, err := r.u64()
	if err != nil {
		return Meta{}, err
	}
	var f [7]int
	for i := range f {
		u, err := r.u32()
		if err != nil {
			return Meta{}, err
		}
		f[i] = int(int32(u))
	}
	zone := ""
	if r.off < len(r.p) {
		if err := r.need(2); err != nil {
			return Meta{}, err
		}
		n := int(binary.LittleEndian.Uint16(r.p[r.off : r.off+2]))
		r.off += 2
		if n > 256 {
			return Meta{}, fmt.Errorf("%w: zone length %d exceeds 256", ErrBadFrame, n)
		}
		if err := r.need(n); err != nil {
			return Meta{}, err
		}
		zone = string(r.p[r.off : r.off+n])
		r.off += n
	}
	if err := r.done(); err != nil {
		return Meta{}, err
	}
	return Meta{
		Version: int64(v),
		Classes: f[0], Features: f[1],
		ShardIndex: f[2], ShardCount: f[3],
		ShardLow: f[4], ShardHigh: f[5], TotalClasses: f[6],
		Zone: zone,
	}, nil
}

// DecodeReloadResp parses an OpReloadResp payload.
func DecodeReloadResp(p []byte) (int64, error) {
	r := reader{p: p}
	v, err := r.u64()
	if err != nil {
		return 0, err
	}
	if err := r.done(); err != nil {
		return 0, err
	}
	return int64(v), nil
}

// DecodeError parses an OpError payload, ignoring the optional detail
// trailer. The message allocates — error frames are off the
// steady-state path by definition.
func DecodeError(p []byte) (ErrCode, string, error) {
	code, msg, _, _, err := DecodeErrorDetail(p)
	return code, msg, err
}

// DecodeErrorDetail parses an OpError payload including the optional
// detail trailer (detail u16 + retry-after-millis u32 after the
// message); a legacy payload that ends at the message yields
// DetailNone and zero retry-after.
func DecodeErrorDetail(p []byte) (ErrCode, string, ErrDetail, time.Duration, error) {
	r := reader{p: p}
	if err := r.need(4); err != nil {
		return 0, "", 0, 0, err
	}
	code := ErrCode(binary.LittleEndian.Uint16(p[0:2]))
	n := int(binary.LittleEndian.Uint16(p[2:4]))
	if n > 512 {
		// The spec bounds msgLen at 512 (Encoder.Error truncates to
		// match); enforce it on the read side too.
		return 0, "", 0, 0, fmt.Errorf("%w: error message length %d exceeds 512", ErrBadFrame, n)
	}
	r.off = 4
	if err := r.need(n); err != nil {
		return 0, "", 0, 0, err
	}
	msg := string(p[4 : 4+n])
	r.off += n
	detail := DetailNone
	var retryAfter time.Duration
	if r.off < len(r.p) {
		if err := r.need(6); err != nil {
			return 0, "", 0, 0, err
		}
		detail = ErrDetail(binary.LittleEndian.Uint16(r.p[r.off : r.off+2]))
		retryAfter = time.Duration(binary.LittleEndian.Uint32(r.p[r.off+2:r.off+6])) * time.Millisecond
		r.off += 6
	}
	if err := r.done(); err != nil {
		return 0, "", 0, 0, err
	}
	return code, msg, detail, retryAfter, nil
}
