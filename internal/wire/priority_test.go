package wire

import (
	"encoding/binary"
	"errors"
	"testing"
	"time"
)

// TestPriorityTrailerLayout pins the priority trailer's exact bytes as
// documented in DESIGN.md "Control plane": one u8 immediately before
// the trace trailer (when present) or at the very end of the payload,
// with FlagPriority set in the header flags at offset 6. If this test
// fails, either the code or the spec drifted — fix whichever is wrong.
func TestPriorityTrailerLayout(t *testing.T) {
	// Priority alone: trailer byte is the frame's last byte.
	var e Encoder
	e.Begin(OpScores, 7)
	e.BatchHeader(1, 3, 4)
	e.DenseRow([]float64{1, 2, 3})
	e.PriorityTrailer(2)
	f := e.Bytes()
	if flags := binary.LittleEndian.Uint16(f[6:8]); flags != FlagPriority {
		t.Fatalf("flags = %#x, want FlagPriority (%#x)", flags, FlagPriority)
	}
	if f[len(f)-1] != 2 {
		t.Fatalf("priority byte at frame end = %d, want 2", f[len(f)-1])
	}
	if n := binary.LittleEndian.Uint32(f[16:20]); int(n) != len(f)-HeaderSize {
		t.Fatalf("payload length %d does not cover the trailer (frame has %d payload bytes)", n, len(f)-HeaderSize)
	}

	// Priority + trace: priority u8 sits TraceTrailerSize+1 bytes from
	// the end, immediately before the 9-byte trace trailer.
	var e2 Encoder
	e2.Begin(OpScores, 7)
	e2.BatchHeader(1, 3, 4)
	e2.DenseRow([]float64{1, 2, 3})
	e2.PriorityTrailer(1)
	e2.TraceTrailer(0xDEAD, true)
	f2 := e2.Bytes()
	if flags := binary.LittleEndian.Uint16(f2[6:8]); flags != FlagPriority|FlagTrace {
		t.Fatalf("flags = %#x, want FlagPriority|FlagTrace", flags)
	}
	if got := f2[len(f2)-TraceTrailerSize-PriorityTrailerSize]; got != 1 {
		t.Fatalf("priority byte before trace trailer = %d, want 1", got)
	}

	// Decode side strips in reverse order and recovers both trailers.
	h, err := ParseHeader(f2[:HeaderSize])
	if err != nil {
		t.Fatal(err)
	}
	rest, id, sampled, err := SplitTraceTrailer(h, f2[HeaderSize:])
	if err != nil {
		t.Fatal(err)
	}
	if id != 0xDEAD || !sampled {
		t.Fatalf("trace trailer = (%#x, %v), want (0xDEAD, true)", id, sampled)
	}
	rest, pri, err := SplitPriorityTrailer(h, rest)
	if err != nil {
		t.Fatal(err)
	}
	if pri != 1 {
		t.Fatalf("priority = %d, want 1", pri)
	}
	var batch Batch
	if err := batch.Decode(rest); err != nil {
		t.Fatalf("payload after stripping both trailers does not decode: %v", err)
	}
}

// TestPriorityTrailerAbsent: a frame without FlagPriority decodes to
// class 0 with the payload untouched — the legacy compatibility
// contract (interactive traffic is byte-identical to pre-priority
// frames).
func TestPriorityTrailerAbsent(t *testing.T) {
	var e Encoder
	e.Begin(OpScores, 1)
	e.BatchHeader(1, 3, 4)
	e.DenseRow([]float64{1, 2, 3})
	f := e.Bytes()
	h, err := ParseHeader(f[:HeaderSize])
	if err != nil {
		t.Fatal(err)
	}
	rest, pri, err := SplitPriorityTrailer(h, f[HeaderSize:])
	if err != nil || pri != 0 {
		t.Fatalf("unflagged frame: pri=%d err=%v, want 0/nil", pri, err)
	}
	if len(rest) != len(f)-HeaderSize {
		t.Fatalf("payload shrank from %d to %d bytes without a trailer", len(f)-HeaderSize, len(rest))
	}
}

// TestPriorityTrailerRejectsBadClass: class bytes outside [0,2] are a
// protocol error, not a silent clamp.
func TestPriorityTrailerRejectsBadClass(t *testing.T) {
	var e Encoder
	e.Begin(OpScores, 1)
	e.BatchHeader(1, 3, 4)
	e.DenseRow([]float64{1, 2, 3})
	e.PriorityTrailer(3)
	f := e.Bytes()
	h, err := ParseHeader(f[:HeaderSize])
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := SplitPriorityTrailer(h, f[HeaderSize:]); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("class 3 decoded with err=%v, want ErrBadFrame", err)
	}
}

// TestErrorDetailRoundTrip covers the error frame's detail trailer:
// reason code and retry-after survive the round trip, and a legacy
// payload without the trailer decodes to DetailNone.
func TestErrorDetailRoundTrip(t *testing.T) {
	var e Encoder
	e.Begin(OpError, 9)
	e.ErrorDetail(CodeQueueFull, "rate limited", DetailRateLimited, 1500*time.Millisecond)
	p := e.Bytes()[HeaderSize:]
	code, msg, detail, retry, err := DecodeErrorDetail(p)
	if err != nil {
		t.Fatal(err)
	}
	if code != CodeQueueFull || msg != "rate limited" || detail != DetailRateLimited || retry != 1500*time.Millisecond {
		t.Fatalf("round trip = (%v, %q, %v, %v)", code, msg, detail, retry)
	}

	// DetailNone emits the legacy layout: no trailer bytes at all.
	var e2 Encoder
	e2.Begin(OpError, 9)
	e2.ErrorDetail(CodeQueueFull, "full", DetailNone, time.Second)
	var e3 Encoder
	e3.Begin(OpError, 9)
	e3.Error(CodeQueueFull, "full")
	if got, want := len(e2.Bytes()), len(e3.Bytes()); got != want {
		t.Fatalf("DetailNone payload is %d bytes, legacy Error is %d — must be identical", got, want)
	}
	code, msg, detail, retry, err = DecodeErrorDetail(e3.Bytes()[HeaderSize:])
	if err != nil || code != CodeQueueFull || msg != "full" || detail != DetailNone || retry != 0 {
		t.Fatalf("legacy decode = (%v, %q, %v, %v, %v)", code, msg, detail, retry, err)
	}
}
