package wire

import (
	"encoding/binary"
	"fmt"
)

// The priority trailer: when a frame's header carries FlagPriority, one
// payload byte holds the request's service class (0 interactive,
// 1 batch, 2 background). Its position is immediately BEFORE the trace
// trailer when FlagTrace is also set, else at the very end of the
// payload:
//
//	payload ... | priority u8 (FlagPriority) | trace trailer 9B (FlagTrace)
//
// Decoders therefore strip in reverse append order: SplitTraceTrailer
// first, then SplitPriorityTrailer, then the opcode's payload decoder
// (which rejects trailing bytes). A frame without the flag is
// byte-identical to a pre-priority frame and defaults to the
// interactive class, so legacy traffic is unchanged.

// PriorityTrailer appends the 1-byte priority trailer to the frame
// being built and sets FlagPriority in its header. Call it after the
// payload builders and BEFORE TraceTrailer, mirroring the decode-side
// stripping order.
func (e *Encoder) PriorityTrailer(pri uint8) {
	e.u8(pri)
	flags := binary.LittleEndian.Uint16(e.buf[6:8])
	binary.LittleEndian.PutUint16(e.buf[6:8], flags|FlagPriority)
}

// SplitPriorityTrailer strips the priority trailer from a payload whose
// trace trailer (if any) has already been stripped. For a frame without
// FlagPriority it returns the payload unchanged and class 0
// (interactive). A flagged frame too short to hold the byte, or a class
// byte outside the defined range, is a protocol error.
func SplitPriorityTrailer(h Header, payload []byte) (rest []byte, pri uint8, err error) {
	if h.Flags&FlagPriority == 0 {
		return payload, 0, nil
	}
	if len(payload) < PriorityTrailerSize {
		return nil, 0, fmt.Errorf("%w: %d payload bytes cannot hold the priority trailer", ErrBadFrame, len(payload))
	}
	n := len(payload) - PriorityTrailerSize
	pri = payload[n]
	if pri > 2 {
		return nil, 0, fmt.Errorf("%w: priority class %d outside [0,2]", ErrBadFrame, pri)
	}
	return payload[:n], pri, nil
}
