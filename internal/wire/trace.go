package wire

import (
	"encoding/binary"
	"fmt"
)

// The trace trailer: when a frame's header carries FlagTrace, the last
// TraceTrailerSize (9) bytes of its payload are
//
//	offset len-9  trace ID  uint64 LE (nonzero)
//	offset len-1  sampled   uint8     (1 = record spans, 0 = propagate only)
//
// The trailer bytes count toward the header's length field, and every
// payload decoder in this package rejects trailing bytes — so a decoder
// MUST strip the trailer (SplitTraceTrailer) before interpreting the
// payload. A frame without the flag is byte-identical to a pre-trace
// frame; legacy peers therefore interoperate as long as tracing is not
// enabled toward them (they reject the unknown flag, by design — a
// trailer silently read as payload would corrupt row data).

// TraceTrailer appends the 9-byte trace trailer to the frame being
// built and sets FlagTrace in its header. Call it after the payload
// builders, immediately before Bytes.
func (e *Encoder) TraceTrailer(id uint64, sampled bool) {
	e.u64(id)
	if sampled {
		e.u8(1)
	} else {
		e.u8(0)
	}
	flags := binary.LittleEndian.Uint16(e.buf[6:8])
	binary.LittleEndian.PutUint16(e.buf[6:8], flags|FlagTrace)
}

// SplitTraceTrailer strips the trace trailer from a received payload.
// For a frame without FlagTrace it returns the payload unchanged and a
// zero trace ID. Failures wrap ErrBadFrame: a flagged frame too short
// to hold the trailer is a protocol error.
func SplitTraceTrailer(h Header, payload []byte) (rest []byte, id uint64, sampled bool, err error) {
	if h.Flags&FlagTrace == 0 {
		return payload, 0, false, nil
	}
	if len(payload) < TraceTrailerSize {
		return nil, 0, false, fmt.Errorf("%w: %d payload bytes cannot hold the trace trailer", ErrBadFrame, len(payload))
	}
	n := len(payload) - TraceTrailerSize
	id = binary.LittleEndian.Uint64(payload[n : n+8])
	sampled = payload[n+8] != 0
	return payload[:n], id, sampled, nil
}
