package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"testing"
)

// TestTraceTrailerLayoutMatchesSpec pins the exact trailer offsets
// documented in DESIGN.md "Observability": a FlagTrace frame carries
// its u64 trace ID at payload offset len-9 and the sampled byte at
// len-1, both counted by the header's length field.
func TestTraceTrailerLayoutMatchesSpec(t *testing.T) {
	var e Encoder
	e.Begin(OpPredict, 77)
	e.BatchHeader(1, 2, 0)
	e.DenseRow([]float64{1, 2})
	e.TraceTrailer(0x0123456789abcdef, true)
	f := e.Bytes()

	if flags := binary.LittleEndian.Uint16(f[6:8]); flags != FlagTrace {
		t.Fatalf("flags at offset 6 = %#x, want FlagTrace (%#x)", flags, FlagTrace)
	}
	payloadLen := int(binary.LittleEndian.Uint32(f[16:20]))
	if payloadLen != len(f)-HeaderSize {
		t.Fatalf("length field %d does not count the trailer (frame has %d payload bytes)",
			payloadLen, len(f)-HeaderSize)
	}
	p := f[HeaderSize:]
	// Batch payload: 12 header bytes + (1 kind + 16 row bits) = 29, then 9 trailer bytes.
	if len(p) != 29+TraceTrailerSize {
		t.Fatalf("payload is %d bytes, spec arithmetic says 29 + 9 = 38", len(p))
	}
	if id := binary.LittleEndian.Uint64(p[len(p)-9 : len(p)-1]); id != 0x0123456789abcdef {
		t.Fatalf("trace ID at payload offset len-9 = %#x, want 0x0123456789abcdef", id)
	}
	if p[len(p)-1] != 1 {
		t.Fatalf("sampled byte at payload offset len-1 = %d, want 1", p[len(p)-1])
	}

	// Round trip through ParseHeader + SplitTraceTrailer, then the
	// stripped payload must decode as a normal batch (the decoder's
	// trailing-bytes check would reject an unstripped one).
	h, err := ParseHeader(f)
	if err != nil {
		t.Fatal(err)
	}
	rest, id, sampled, err := SplitTraceTrailer(h, p)
	if err != nil || id != 0x0123456789abcdef || !sampled {
		t.Fatalf("split: id=%#x sampled=%v err=%v", id, sampled, err)
	}
	var b Batch
	if err := b.Decode(rest); err != nil {
		t.Fatalf("stripped payload did not decode: %v", err)
	}
	if err := b.Decode(p); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("unstripped traced payload must be rejected by Batch.Decode, got %v", err)
	}
}

// TestTraceTrailerLegacyCompat pins backward compatibility: an encoder
// that never calls TraceTrailer emits frames byte-identical to the
// pre-trace protocol, and SplitTraceTrailer on an unflagged frame is
// the identity.
func TestTraceTrailerLegacyCompat(t *testing.T) {
	var e Encoder
	untraced := append([]byte(nil), buildBatchFrame(&e)...)
	if flags := binary.LittleEndian.Uint16(untraced[6:8]); flags != 0 {
		t.Fatalf("untraced frame carries flags %#x, must be 0 for legacy peers", flags)
	}
	h, err := ParseHeader(untraced)
	if err != nil {
		t.Fatal(err)
	}
	rest, id, sampled, err := SplitTraceTrailer(h, untraced[HeaderSize:])
	if err != nil || id != 0 || sampled {
		t.Fatalf("unflagged split: id=%d sampled=%v err=%v", id, sampled, err)
	}
	if !bytes.Equal(rest, untraced[HeaderSize:]) {
		t.Fatal("unflagged split modified the payload")
	}

	// A traced frame is the untraced frame + flag bit + 9 trailer bytes
	// + patched length: nothing else moves.
	var e2 Encoder
	f := buildBatchFrame(&e2)
	e2.TraceTrailer(5, false)
	traced := e2.Bytes()
	if len(traced) != len(untraced)+TraceTrailerSize {
		t.Fatalf("traced frame is %d bytes, want untraced+9 = %d", len(traced), len(untraced)+TraceTrailerSize)
	}
	if !bytes.Equal(traced[HeaderSize:len(untraced)], untraced[HeaderSize:]) {
		t.Fatal("trailer changed payload bytes before the trailer")
	}
	_ = f

	// A flagged frame too short for the trailer is a protocol error.
	var e3 Encoder
	e3.Begin(OpMeta, 1)
	short := append([]byte(nil), e3.Bytes()...)
	short[6] = 1
	h3, err := ParseHeader(short)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := SplitTraceTrailer(h3, short[HeaderSize:]); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("short flagged payload: got %v, want ErrBadFrame", err)
	}
}

// TestTraceTrailerZeroAlloc extends the data-plane allocation contract
// to traced frames: appending and stripping the trailer allocates
// nothing at steady state.
func TestTraceTrailerZeroAlloc(t *testing.T) {
	dense := []float64{1, 2, 3, 4}
	var e Encoder
	encode := func() []byte {
		e.Begin(OpPredict, 1)
		e.BatchHeader(1, len(dense), 0)
		e.DenseRow(dense)
		e.TraceTrailer(0xfeed, true)
		return e.Bytes()
	}
	frame := append([]byte(nil), encode()...)
	if allocs := testing.AllocsPerRun(100, func() { encode() }); allocs != 0 {
		t.Fatalf("traced encode: %.1f allocs/op, want 0", allocs)
	}
	h, err := ParseHeader(frame)
	if err != nil {
		t.Fatal(err)
	}
	if allocs := testing.AllocsPerRun(100, func() {
		if _, _, _, err := SplitTraceTrailer(h, frame[HeaderSize:]); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Fatalf("trailer split: %.1f allocs/op, want 0", allocs)
	}
}
