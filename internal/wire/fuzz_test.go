package wire

import (
	"bytes"
	"math"
	"testing"
)

// FuzzFrameDecode drives the full decode surface — header parse, batch
// decode, and every response decoder — with arbitrary bytes. The
// decoders must never panic, never allocate proportionally to a lying
// length prefix, and must either round up a clean parse or return an
// error; a committed seed corpus under testdata/fuzz pins the
// interesting shapes (valid frames of each kind, truncations at field
// boundaries, bad magic/version/flags, lying row counts).
func FuzzFrameDecode(f *testing.F) {
	var e Encoder

	// Valid batch request.
	e.Begin(OpScores, 1)
	e.BatchHeader(2, 3, 2)
	e.DenseRow([]float64{1, -2, math.Pi})
	e.SparseRow([]int{0, 2}, []float64{0.5, -0.25})
	batch := append([]byte(nil), e.Bytes()...)
	f.Add(batch)
	// Truncations at the header/payload boundary and inside records.
	f.Add(batch[:HeaderSize])
	f.Add(batch[:HeaderSize+12])
	f.Add(batch[:len(batch)-3])
	// Valid responses of each kind.
	e.Begin(OpPredictResp, 2)
	e.PredictResp(1, []int{0, 4})
	f.Add(append([]byte(nil), e.Bytes()...))
	e.Begin(OpProbaResp, 3)
	e.FloatsResp(1, 1, 3, []float64{0.2, 0.3, 0.5})
	f.Add(append([]byte(nil), e.Bytes()...))
	e.Begin(OpMetaResp, 4)
	e.MetaResp(Meta{Version: 1, Classes: 4, Features: 8, TotalClasses: 4})
	f.Add(append([]byte(nil), e.Bytes()...))
	e.Begin(OpError, 5)
	e.Error(CodeQueueFull, "full")
	f.Add(append([]byte(nil), e.Bytes()...))
	// Corruptions.
	bad := append([]byte(nil), batch...)
	bad[0] = 'X'
	f.Add(bad)
	lying := append([]byte(nil), batch...)
	lying[16], lying[17], lying[18], lying[19] = 0xFF, 0xFF, 0xFF, 0x03 // huge length
	f.Add(lying)

	f.Fuzz(func(t *testing.T, data []byte) {
		h, err := ParseHeader(data)
		if err != nil {
			return
		}
		if len(data) < HeaderSize+int(h.Len) {
			// Stream-level truncation is Reader's job; exercise it too.
			r := NewReader(bytes.NewReader(data))
			if _, _, err := r.Next(); err == nil {
				t.Fatal("Reader accepted a frame shorter than its header length")
			}
			return
		}
		payload := data[HeaderSize : HeaderSize+int(h.Len)]

		// Feed the payload to every decoder regardless of opcode: a
		// confused peer must get an error, never a panic or a bogus
		// success that reads out of bounds.
		var b Batch
		if err := b.Decode(payload); err == nil {
			// A clean parse must re-encode to the same record count.
			if b.Rows() != len(b.Kind) || len(b.Dense)+len(b.Idx) != b.Rows() {
				t.Fatalf("inconsistent batch: rows=%d dense=%d sparse=%d", b.Rows(), len(b.Dense), len(b.Idx))
			}
			for _, row := range b.Dense {
				if len(row) != b.Features {
					t.Fatalf("dense row width %d, features %d", len(row), b.Features)
				}
			}
			for i := range b.Idx {
				if len(b.Idx[i]) != len(b.Val[i]) {
					t.Fatalf("sparse row %d: %d indices, %d values", i, len(b.Idx[i]), len(b.Val[i]))
				}
			}
		}
		ints := make([]int, 64)
		if _, n, err := DecodePredictResp(payload, ints); err == nil && n > 64 {
			t.Fatalf("predict decode wrote %d rows into 64 slots", n)
		}
		floats := make([]float64, 256)
		if _, rows, cols, err := DecodeFloatsResp(payload, floats); err == nil && rows*cols > 256 {
			t.Fatalf("floats decode wrote %dx%d into 256 slots", rows, cols)
		}
		DecodeMetaResp(payload)
		DecodeReloadResp(payload)
		DecodeError(payload)
	})
}
