package wire

import (
	"math/rand"
	"testing"
)

// benchFrame builds a 16-row mixed batch with 784-feature dense rows —
// the MNIST-shaped regime PERF.md's serving matrix measures.
func benchFrame(b *testing.B) (*Encoder, []byte, [][]float64, [][]int, [][]float64) {
	rng := rand.New(rand.NewSource(1))
	const rows, features = 16, 784
	dense := make([][]float64, rows/2)
	for i := range dense {
		dense[i] = make([]float64, features)
		for j := range dense[i] {
			dense[i][j] = rng.NormFloat64()
		}
	}
	idx := make([][]int, rows/2)
	val := make([][]float64, rows/2)
	for i := range idx {
		for j := 0; j < features; j += 7 {
			idx[i] = append(idx[i], j)
			val[i] = append(val[i], rng.NormFloat64())
		}
	}
	var e Encoder
	e.Begin(OpPredict, 1)
	e.BatchHeader(rows, features, 0)
	for i := range dense {
		e.DenseRow(dense[i])
		e.SparseRow(idx[i], val[i])
	}
	frame := append([]byte(nil), e.Bytes()...)
	return &e, frame, dense, idx, val
}

// BenchmarkBatchEncode measures one batch-request frame build (16 mixed
// rows, 784 features). Steady state is zero-alloc.
func BenchmarkBatchEncode(b *testing.B) {
	e, frame, dense, idx, val := benchFrame(b)
	b.SetBytes(int64(len(frame)))
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		e.Begin(OpPredict, uint64(n))
		e.BatchHeader(16, 784, 0)
		for i := range dense {
			e.DenseRow(dense[i])
			e.SparseRow(idx[i], val[i])
		}
		e.Bytes()
	}
}

// BenchmarkBatchDecode measures the matching decode into reusable
// staging. Steady state is zero-alloc.
func BenchmarkBatchDecode(b *testing.B) {
	_, frame, _, _, _ := benchFrame(b)
	payload := frame[HeaderSize:]
	var batch Batch
	if err := batch.Decode(payload); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(frame)))
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		if err := batch.Decode(payload); err != nil {
			b.Fatal(err)
		}
	}
}
