package metrics

import (
	"math/rand"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestBucketIndexMonotoneAndInverse(t *testing.T) {
	prev := -1
	for _, v := range []int64{0, 1, 2, 31, 32, 33, 63, 64, 100, 1023, 1024,
		1 << 20, 1<<20 + 7, 1 << 30, 1 << 39, 1 << 45} {
		idx := bucketIndex(v)
		if idx < prev {
			t.Fatalf("bucketIndex not monotone at %d: %d < %d", v, idx, prev)
		}
		prev = idx
		if idx < histBuckets-1 {
			if lo := bucketLower(idx); lo > v {
				t.Fatalf("bucketLower(%d)=%d exceeds member %d", idx, lo, v)
			}
			if hi := bucketLower(idx + 1); hi <= v && idx+1 < histBuckets {
				t.Fatalf("value %d outside bucket %d: next lower %d", v, idx, hi)
			}
		}
	}
	// Boundary round-trip: every bucket's lower bound maps to itself.
	for idx := 0; idx < histBuckets; idx++ {
		if got := bucketIndex(bucketLower(idx)); got != idx {
			t.Fatalf("round trip bucket %d -> %d", idx, got)
		}
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := NewHistogram()
	// 1..1000 microseconds uniformly: quantiles are known exactly.
	for i := 1; i <= 1000; i++ {
		h.Observe(time.Duration(i) * time.Microsecond)
	}
	if h.Count() != 1000 {
		t.Fatalf("count %d", h.Count())
	}
	for _, c := range []struct {
		q    float64
		want time.Duration
	}{
		{0.50, 500 * time.Microsecond},
		{0.95, 950 * time.Microsecond},
		{0.99, 990 * time.Microsecond},
	} {
		got := h.Quantile(c.q)
		// Log buckets bound relative error by ~1/32 plus interpolation.
		if rel := (got.Seconds() - c.want.Seconds()) / c.want.Seconds(); rel < -0.05 || rel > 0.05 {
			t.Errorf("q%.2f = %v, want ~%v", c.q, got, c.want)
		}
	}
	if h.Min() != time.Microsecond || h.Max() != 1000*time.Microsecond {
		t.Errorf("min=%v max=%v", h.Min(), h.Max())
	}
	if mean := h.Mean(); mean < 480*time.Microsecond || mean > 520*time.Microsecond {
		t.Errorf("mean %v", mean)
	}
}

func TestHistogramAgainstExactQuantiles(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	h := NewHistogram()
	vals := make([]float64, 5000)
	for i := range vals {
		// Log-normal-ish latencies spanning 3 decades.
		v := time.Duration(1000 * (1 + rng.ExpFloat64()*500))
		vals[i] = float64(v)
		h.Observe(v)
	}
	sort.Float64s(vals)
	for _, q := range []float64{0.5, 0.9, 0.95, 0.99} {
		exact := vals[int(q*float64(len(vals)-1))]
		got := float64(h.Quantile(q))
		if rel := (got - exact) / exact; rel < -0.08 || rel > 0.08 {
			t.Errorf("q%v: got %v, exact %v (rel %.3f)", q, got, exact, rel)
		}
	}
}

func TestHistogramEmptyAndClamp(t *testing.T) {
	h := NewHistogram()
	if h.Quantile(0.5) != 0 || h.Mean() != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Fatal("empty histogram must report zeros")
	}
	h.Observe(-5 * time.Second) // clamps to zero
	if h.Max() != 0 || h.Count() != 1 {
		t.Fatalf("negative observation not clamped: max=%v", h.Max())
	}
	h.Observe(time.Hour * 24) // beyond the last octave still lands somewhere
	if h.Quantile(1) > 24*time.Hour {
		t.Fatalf("q1 %v exceeds max", h.Quantile(1))
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	h := NewHistogram()
	const workers, per = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < per; i++ {
				h.Observe(time.Duration(rng.Intn(1e6)))
			}
		}(int64(w))
	}
	wg.Wait()
	if h.Count() != workers*per {
		t.Fatalf("lost observations: %d", h.Count())
	}
	var sum int64
	for i := range h.buckets {
		sum += h.buckets[i].Load()
	}
	if sum != workers*per {
		t.Fatalf("bucket sum %d != %d", sum, workers*per)
	}
}

func TestHistogramWriteMetrics(t *testing.T) {
	h := NewHistogram()
	h.Observe(time.Millisecond)
	var b strings.Builder
	h.WriteMetrics(&b, "request_latency")
	out := b.String()
	for _, want := range []string{
		"request_latency_count 1",
		"request_latency_p50_seconds 0.001",
		"request_latency_p99_seconds",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("metrics output missing %q:\n%s", want, out)
		}
	}
}

// TestHistogramQuantileEmptyAndClampedQ pins the edge contract: every
// quantile of an empty histogram is zero (not NaN, not a panic), and q
// outside [0,1] clamps to the endpoints instead of extrapolating.
func TestHistogramQuantileEmptyAndClampedQ(t *testing.T) {
	h := NewHistogram()
	for _, q := range []float64{-1, 0, 0.5, 1, 2} {
		if got := h.Quantile(q); got != 0 {
			t.Fatalf("empty Quantile(%v) = %v, want 0", q, got)
		}
	}
	h.Observe(time.Millisecond)
	if got := h.Quantile(-0.5); got != h.Quantile(0) {
		t.Fatalf("Quantile(-0.5) = %v, want clamp to Quantile(0) = %v", got, h.Quantile(0))
	}
	if got := h.Quantile(1.5); got != h.Quantile(1) {
		t.Fatalf("Quantile(1.5) = %v, want clamp to Quantile(1) = %v", got, h.Quantile(1))
	}
}

// TestHistogramSingleObservation pins the degenerate distribution:
// after exactly one observation, min, max, mean, and every quantile
// collapse to that value exactly (the quantile interpolation must not
// leak bucket bounds past the observed extremes).
func TestHistogramSingleObservation(t *testing.T) {
	const v = 123456 * time.Nanosecond
	h := NewHistogram()
	h.Observe(v)
	if h.Count() != 1 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Min() != v || h.Max() != v || h.Mean() != v {
		t.Fatalf("min=%v max=%v mean=%v, want all %v", h.Min(), h.Max(), h.Mean(), v)
	}
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := h.Quantile(q); got != v {
			t.Fatalf("Quantile(%v) = %v, want %v", q, got, v)
		}
	}
}

// TestHistogramConcurrentObserveSnapshot races writers against
// Snapshot readers under -race: mid-stream snapshots must be safe and
// count must never regress (min/p50/max ordering is only checked on
// the final quiesced snapshot — Snapshot's fields are read at slightly
// different instants, so mid-stream ordering is not guaranteed).
func TestHistogramConcurrentObserveSnapshot(t *testing.T) {
	h := NewHistogram()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 5000; i++ {
				h.Observe(time.Duration(1 + rng.Intn(1e6)))
			}
		}(int64(w))
	}
	readerDone := make(chan struct{})
	go func() {
		defer close(readerDone)
		var lastCount int64
		for {
			select {
			case <-stop:
				return
			default:
			}
			s := h.Snapshot()
			if s.Count < lastCount {
				t.Errorf("snapshot count regressed: %d -> %d", lastCount, s.Count)
				return
			}
			lastCount = s.Count
		}
	}()
	wg.Wait()
	close(stop)
	<-readerDone
	s := h.Snapshot()
	if s.Count != 4*5000 {
		t.Fatalf("final count %d, want %d", s.Count, 4*5000)
	}
	if s.P50 < s.Min || s.P50 > s.Max {
		t.Fatalf("inconsistent final snapshot: %v", s)
	}
}
