package metrics

import "time"

// Delta windows a cumulative Histogram: each Advance computes quantiles
// over only the observations recorded since the previous Advance. A
// control loop needs this — the cumulative p99 never recovers after a
// load spike, which would wedge any scale-down decision keyed on it —
// while the histogram itself stays the cheap lock-free cumulative type
// the hot path records into.
//
// Delta is NOT safe for concurrent use; the control loop that owns it
// calls Advance once per tick.
type Delta struct {
	h    *Histogram
	prev []int64
	cur  []int64
}

// NewDelta starts a window over h; the first Advance covers everything
// observed since this call.
func NewDelta(h *Histogram) *Delta {
	d := &Delta{h: h, prev: make([]int64, histBuckets), cur: make([]int64, histBuckets)}
	for i := range d.prev {
		d.prev[i] = h.buckets[i].Load()
	}
	return d
}

// Advance closes the current window and returns its observation count
// and q-quantile (zero when the window is empty). Concurrent Observe
// calls may land on either side of the boundary — acceptable for a
// monitoring signal.
func (d *Delta) Advance(q float64) (count int64, quantile time.Duration) {
	for i := range d.cur {
		d.cur[i] = d.h.buckets[i].Load()
	}
	var n int64
	for i := range d.cur {
		n += d.cur[i] - d.prev[i]
	}
	if n > 0 {
		if q < 0 {
			q = 0
		}
		if q > 1 {
			q = 1
		}
		rank := q * float64(n-1)
		var seen float64
		for i := range d.cur {
			c := float64(d.cur[i] - d.prev[i])
			if c <= 0 {
				continue
			}
			if seen+c > rank {
				lo := bucketLower(i)
				var hi int64
				if i+1 < histBuckets {
					hi = bucketLower(i + 1)
				} else {
					hi = lo * 2
				}
				frac := (rank - seen + 0.5) / c
				quantile = time.Duration(float64(lo) + frac*float64(hi-lo))
				break
			}
			seen += c
		}
	}
	d.prev, d.cur = d.cur, d.prev
	return n, quantile
}
