package metrics

import (
	"testing"
	"time"
)

// TestDeltaWindowsSinceNew pins the windowing contract: observations
// recorded before NewDelta are excluded, each Advance covers exactly the
// observations since the previous one, and a quiet window after a busy
// one reads empty (the prev/cur swap must not resurrect old counts).
func TestDeltaWindowsSinceNew(t *testing.T) {
	h := NewHistogram()
	for i := 0; i < 3; i++ {
		h.Observe(time.Hour) // pre-window noise the delta must not see
	}
	d := NewDelta(h)
	if n, q := d.Advance(0.99); n != 0 || q != 0 {
		t.Errorf("first window = (%d, %v), want (0, 0): pre-NewDelta observations leaked in", n, q)
	}
	for i := 0; i < 100; i++ {
		h.Observe(time.Millisecond)
	}
	n, q := d.Advance(0.5)
	if n != 100 {
		t.Errorf("window count = %d, want 100", n)
	}
	if q < 500*time.Microsecond || q > 2*time.Millisecond {
		t.Errorf("window p50 = %v, want ~1ms (bucket resolution is ~3%%)", q)
	}
	if n, q := d.Advance(0.5); n != 0 || q != 0 {
		t.Errorf("quiet window after busy one = (%d, %v), want (0, 0)", n, q)
	}
}

// TestDeltaAllRejectedWindow is the control-plane edge the autoscaler
// depends on: when every request in a tick was rejected at admission,
// nothing reaches the latency histogram and the window is empty. Advance
// must report (0, 0) — not a stale quantile from the last busy window —
// or a rejected-everything fleet would look permanently slow.
func TestDeltaAllRejectedWindow(t *testing.T) {
	h := NewHistogram()
	d := NewDelta(h)
	for i := 0; i < 50; i++ {
		h.Observe(10 * time.Millisecond)
	}
	if n, _ := d.Advance(0.99); n != 50 {
		t.Fatalf("busy window count = %d, want 50", n)
	}
	for win := 0; win < 3; win++ {
		if n, q := d.Advance(0.99); n != 0 || q != 0 {
			t.Errorf("all-rejected window %d = (%d, %v), want (0, 0)", win, n, q)
		}
	}
}

// TestDeltaRecoversAfterSpike is Delta's reason to exist: after a load
// spike, the cumulative histogram's p99 stays wedged at the spike value
// forever, while the windowed p99 must drop back to the current traffic.
func TestDeltaRecoversAfterSpike(t *testing.T) {
	h := NewHistogram()
	d := NewDelta(h)
	for i := 0; i < 1000; i++ {
		h.Observe(100 * time.Millisecond)
	}
	if _, q := d.Advance(0.99); q < 50*time.Millisecond {
		t.Fatalf("spike window p99 = %v, want >= 50ms", q)
	}
	for i := 0; i < 1000; i++ {
		h.Observe(time.Millisecond)
	}
	_, q := d.Advance(0.99)
	if q < 500*time.Microsecond || q > 10*time.Millisecond {
		t.Errorf("post-spike window p99 = %v, want ~1ms: the window did not recover", q)
	}
	if cum := h.Snapshot().P99; cum < 50*time.Millisecond {
		t.Errorf("cumulative p99 = %v, want still >= 50ms (that wedge is why Delta exists)", cum)
	}
}

// TestDeltaTopBucketAndClamp covers the wraparound edges: an observation
// beyond the histogram's 2^40ns range clamps into the last bucket (whose
// upper edge is synthesized as 2x its lower edge), and out-of-range
// quantile arguments clamp to [0, 1] instead of running off the buckets.
func TestDeltaTopBucketAndClamp(t *testing.T) {
	h := NewHistogram()
	d := NewDelta(h)
	h.Observe(30 * time.Minute) // beyond the ~18min range: last bucket
	n, q := d.Advance(0.99)
	if n != 1 {
		t.Fatalf("count = %d, want 1", n)
	}
	if q < time.Minute {
		t.Errorf("top-bucket quantile = %v, want a finite value >= 1m", q)
	}

	for i := 0; i < 10; i++ {
		h.Observe(time.Millisecond)
	}
	if n, q := d.Advance(-1); n != 10 || q <= 0 {
		t.Errorf("Advance(-1) = (%d, %v), want q clamped to 0 and a positive quantile", n, q)
	}
	for i := 0; i < 10; i++ {
		h.Observe(time.Millisecond)
	}
	if n, q := d.Advance(5); n != 10 || q < 500*time.Microsecond || q > 2*time.Millisecond {
		t.Errorf("Advance(5) = (%d, %v), want q clamped to 1 and ~1ms", n, q)
	}
}
