package metrics

import (
	"fmt"
	"io"
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// Histogram bucket geometry: log2 major buckets subdivided linearly, the
// coarse HDR layout every serving stack uses. Durations are recorded in
// nanoseconds; with 32 sub-buckets per octave the relative quantile error
// is bounded by 1/32 ≈ 3%, constant across the microsecond-to-minute
// range a latency distribution spans.
const (
	histSubBits = 5 // sub-buckets per octave = 2^5
	histSub     = 1 << histSubBits
	histOctaves = 40 // covers up to 2^40 ns ≈ 18 minutes
	histBuckets = histOctaves * histSub
)

// Histogram is a fixed-footprint log-bucketed latency histogram safe for
// concurrent Observe calls (lock-free atomic counters). It powers the
// serving layer's request-latency and batch-size accounting: the batcher
// records every request, /metricz renders quantiles, and the load
// generator reports p50/p95/p99 from the same type.
//
// The zero value is NOT ready to use; call NewHistogram.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64 // nanoseconds; saturates, fine for reporting
	min     atomic.Int64
	max     atomic.Int64
	buckets []atomic.Int64
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	h := &Histogram{buckets: make([]atomic.Int64, histBuckets)}
	h.min.Store(math.MaxInt64)
	return h
}

// bucketIndex maps a nanosecond value to its bucket. Values below one
// sub-bucket land in the linear first octave; the index is monotone in v.
func bucketIndex(v int64) int {
	if v < histSub {
		return int(v) // first octave is exact
	}
	// Position of the leading bit selects the octave; the histSubBits
	// bits below it select the sub-bucket.
	octave := bits.Len64(uint64(v)) - 1
	sub := (v >> (uint(octave) - histSubBits)) & (histSub - 1)
	idx := (octave-histSubBits+1)*histSub + int(sub)
	if idx >= histBuckets {
		return histBuckets - 1
	}
	return idx
}

// bucketLower returns the smallest value mapping to bucket idx (the
// inverse of bucketIndex on bucket boundaries).
func bucketLower(idx int) int64 {
	if idx < histSub {
		return int64(idx)
	}
	octave := idx/histSub + histSubBits - 1
	sub := int64(idx % histSub)
	return (1 << uint(octave)) | (sub << (uint(octave) - histSubBits))
}

// Observe records one duration. Negative durations count as zero.
func (h *Histogram) Observe(d time.Duration) {
	v := int64(d)
	if v < 0 {
		v = 0
	}
	h.buckets[bucketIndex(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.min.Load()
		if v >= cur || h.min.CompareAndSwap(cur, v) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
}

// ObserveValue records a plain count (e.g. a batch size) as nanoseconds,
// so the same quantile machinery serves non-duration distributions.
func (h *Histogram) ObserveValue(v int64) { h.Observe(time.Duration(v)) }

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Mean returns the mean observation; zero when empty.
func (h *Histogram) Mean() time.Duration {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(h.sum.Load() / n)
}

// Min and Max return the observed extremes (zero when empty).
func (h *Histogram) Min() time.Duration {
	if h.count.Load() == 0 {
		return 0
	}
	return time.Duration(h.min.Load())
}

// Max returns the largest observation (zero when empty).
func (h *Histogram) Max() time.Duration {
	if h.count.Load() == 0 {
		return 0
	}
	return time.Duration(h.max.Load())
}

// Quantile returns the q-quantile (q in [0,1]) of the recorded
// distribution, with linear interpolation inside the winning bucket.
// Concurrent Observe calls may skew an in-flight Quantile by the races'
// worth of samples — acceptable for monitoring, which is its job.
func (h *Histogram) Quantile(q float64) time.Duration {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(n-1)
	var seen float64
	for i := range h.buckets {
		c := float64(h.buckets[i].Load())
		if c == 0 {
			continue
		}
		if seen+c > rank {
			lo := bucketLower(i)
			var hi int64
			if i+1 < histBuckets {
				hi = bucketLower(i + 1)
			} else {
				hi = h.max.Load()
			}
			frac := (rank - seen + 0.5) / c
			v := float64(lo) + frac*float64(hi-lo)
			if mx := h.max.Load(); v > float64(mx) {
				v = float64(mx)
			}
			if mn := h.min.Load(); v < float64(mn) {
				v = float64(mn)
			}
			return time.Duration(v)
		}
		seen += c
	}
	return time.Duration(h.max.Load())
}

// Snapshot is a point-in-time summary of a histogram.
type Snapshot struct {
	Count          int64
	Mean, Min, Max time.Duration
	P50, P95, P99  time.Duration
}

// Snapshot returns the standard reporting summary.
func (h *Histogram) Snapshot() Snapshot {
	return Snapshot{
		Count: h.Count(),
		Mean:  h.Mean(), Min: h.Min(), Max: h.Max(),
		P50: h.Quantile(0.50), P95: h.Quantile(0.95), P99: h.Quantile(0.99),
	}
}

func (s Snapshot) String() string {
	return fmt.Sprintf("n=%d mean=%v min=%v p50=%v p95=%v p99=%v max=%v",
		s.Count, s.Mean, s.Min, s.P50, s.P95, s.P99, s.Max)
}

// WriteMetrics renders the histogram in the flat `name_stat value` text
// format of /metricz. Durations are reported in seconds.
func (h *Histogram) WriteMetrics(w io.Writer, name string) {
	s := h.Snapshot()
	fmt.Fprintf(w, "%s_count %d\n", name, s.Count)
	for _, q := range []struct {
		suffix string
		v      time.Duration
	}{
		{"mean", s.Mean}, {"p50", s.P50}, {"p95", s.P95}, {"p99", s.P99}, {"max", s.Max},
	} {
		fmt.Fprintf(w, "%s_%s_seconds %.9f\n", name, q.suffix, q.v.Seconds())
	}
}
