// Package metrics holds the measurement vocabulary of the evaluation:
// convergence traces over virtual time, time-to-threshold queries (the
// paper's theta = (F(x_k) - F(x*))/F(x*) criterion behind Figure 3), and
// speedup ratios.
package metrics

import (
	"fmt"
	"math"
	"time"
)

// Point is one epoch's measurement in a convergence trace.
type Point struct {
	Epoch int
	// Time is the virtual wall time at the end of the epoch.
	Time time.Duration
	// Objective is the global training objective F.
	Objective float64
	// TestAccuracy is in [0,1]; NaN when not measured.
	TestAccuracy float64
	// GradNorm is ||grad F|| when measured; NaN otherwise.
	GradNorm float64
}

// Trace is a solver's convergence history on one dataset.
type Trace struct {
	Solver  string
	Dataset string
	Points  []Point
}

// Append adds a point.
func (t *Trace) Append(p Point) { t.Points = append(t.Points, p) }

// Final returns the last point; ok is false for an empty trace.
func (t *Trace) Final() (Point, bool) {
	if len(t.Points) == 0 {
		return Point{}, false
	}
	return t.Points[len(t.Points)-1], true
}

// BestObjective returns the smallest objective seen.
func (t *Trace) BestObjective() float64 {
	best := math.Inf(1)
	for _, p := range t.Points {
		if p.Objective < best {
			best = p.Objective
		}
	}
	return best
}

// TimeToObjective returns the virtual time of the first point whose
// objective is <= target; ok is false if the trace never reaches it.
func (t *Trace) TimeToObjective(target float64) (time.Duration, bool) {
	for _, p := range t.Points {
		if p.Objective <= target {
			return p.Time, true
		}
	}
	return 0, false
}

// EpochsToObjective returns the first epoch whose objective is <= target.
func (t *Trace) EpochsToObjective(target float64) (int, bool) {
	for _, p := range t.Points {
		if p.Objective <= target {
			return p.Epoch, true
		}
	}
	return 0, false
}

// AvgEpochTime returns total time divided by the number of epochs — the
// quantity plotted in the paper's Figure 2.
func (t *Trace) AvgEpochTime() time.Duration {
	if len(t.Points) == 0 {
		return 0
	}
	last := t.Points[len(t.Points)-1]
	epochs := last.Epoch
	if epochs <= 0 {
		epochs = len(t.Points)
	}
	return last.Time / time.Duration(epochs)
}

// RelativeTarget converts the paper's theta criterion into an absolute
// objective target: F* (1 + theta) for positive F*, and the symmetric
// form otherwise.
func RelativeTarget(fStar, theta float64) float64 {
	return fStar + theta*math.Abs(fStar)
}

// TimeToRelative returns the time to reach theta-relative suboptimality
// (F - F*)/|F*| <= theta, the criterion of the paper's Figure 3.
func (t *Trace) TimeToRelative(fStar, theta float64) (time.Duration, bool) {
	return t.TimeToObjective(RelativeTarget(fStar, theta))
}

// SpeedupRatio returns how much faster `fast` reaches the theta target
// than `slow` (the paper's Figure 3 ratio: slow time / fast time).
// ok is false when either trace misses the target.
func SpeedupRatio(slow, fast *Trace, fStar, theta float64) (float64, bool) {
	ts, okS := slow.TimeToRelative(fStar, theta)
	tf, okF := fast.TimeToRelative(fStar, theta)
	if !okS || !okF || tf <= 0 {
		return 0, false
	}
	return float64(ts) / float64(tf), true
}

// Accuracy returns the fraction of pred equal to want.
func Accuracy(pred, want []int) float64 {
	if len(pred) != len(want) {
		panic("metrics: Accuracy length mismatch")
	}
	if len(pred) == 0 {
		return 0
	}
	correct := 0
	for i := range pred {
		if pred[i] == want[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(pred))
}

// ConfusionMatrix returns counts[trueClass][predictedClass].
func ConfusionMatrix(pred, want []int, classes int) [][]int {
	m := make([][]int, classes)
	for i := range m {
		m[i] = make([]int, classes)
	}
	for i := range pred {
		if want[i] >= 0 && want[i] < classes && pred[i] >= 0 && pred[i] < classes {
			m[want[i]][pred[i]]++
		}
	}
	return m
}

func (p Point) String() string {
	return fmt.Sprintf("epoch %d t=%v F=%.6g acc=%.4f", p.Epoch, p.Time, p.Objective, p.TestAccuracy)
}
