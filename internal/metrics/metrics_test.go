package metrics

import (
	"math"
	"testing"
	"time"
)

func sampleTrace() *Trace {
	return &Trace{
		Solver:  "s",
		Dataset: "d",
		Points: []Point{
			{Epoch: 0, Time: 0, Objective: 10},
			{Epoch: 1, Time: time.Second, Objective: 5},
			{Epoch: 2, Time: 2 * time.Second, Objective: 2},
			{Epoch: 3, Time: 3 * time.Second, Objective: 1.1},
		},
	}
}

func TestFinal(t *testing.T) {
	tr := sampleTrace()
	p, ok := tr.Final()
	if !ok || p.Epoch != 3 {
		t.Fatalf("Final=%+v ok=%v", p, ok)
	}
	var empty Trace
	if _, ok := empty.Final(); ok {
		t.Fatal("empty trace returned a final point")
	}
}

func TestBestObjective(t *testing.T) {
	tr := sampleTrace()
	tr.Append(Point{Epoch: 4, Time: 4 * time.Second, Objective: 1.5}) // worse than best
	if got := tr.BestObjective(); got != 1.1 {
		t.Fatalf("BestObjective=%v", got)
	}
}

func TestTimeToObjective(t *testing.T) {
	tr := sampleTrace()
	d, ok := tr.TimeToObjective(5)
	if !ok || d != time.Second {
		t.Fatalf("TimeToObjective(5)=%v ok=%v", d, ok)
	}
	d, ok = tr.TimeToObjective(4.9)
	if !ok || d != 2*time.Second {
		t.Fatalf("TimeToObjective(4.9)=%v ok=%v", d, ok)
	}
	if _, ok := tr.TimeToObjective(0.5); ok {
		t.Fatal("unreachable target reported reached")
	}
}

func TestEpochsToObjective(t *testing.T) {
	tr := sampleTrace()
	e, ok := tr.EpochsToObjective(2)
	if !ok || e != 2 {
		t.Fatalf("EpochsToObjective=%v ok=%v", e, ok)
	}
}

func TestAvgEpochTime(t *testing.T) {
	tr := sampleTrace()
	if got := tr.AvgEpochTime(); got != time.Second {
		t.Fatalf("AvgEpochTime=%v, want 1s", got)
	}
	var empty Trace
	if empty.AvgEpochTime() != 0 {
		t.Fatal("empty trace AvgEpochTime")
	}
}

func TestRelativeTargetAndTimeToRelative(t *testing.T) {
	// fStar=1, theta=0.1 -> target 1.1 reached at t=3s.
	tr := sampleTrace()
	if got := RelativeTarget(1, 0.1); math.Abs(got-1.1) > 1e-12 {
		t.Fatalf("RelativeTarget=%v", got)
	}
	d, ok := tr.TimeToRelative(1, 0.1)
	if !ok || d != 3*time.Second {
		t.Fatalf("TimeToRelative=%v ok=%v", d, ok)
	}
	// Negative fStar handled via |fStar|.
	if got := RelativeTarget(-2, 0.5); math.Abs(got-(-1)) > 1e-12 {
		t.Fatalf("RelativeTarget(-2,0.5)=%v", got)
	}
}

func TestSpeedupRatio(t *testing.T) {
	slow := sampleTrace() // reaches 1.1 at 3s
	fast := &Trace{Points: []Point{
		{Epoch: 1, Time: time.Second, Objective: 1.05},
	}}
	r, ok := SpeedupRatio(slow, fast, 1, 0.1)
	if !ok || math.Abs(r-3) > 1e-12 {
		t.Fatalf("SpeedupRatio=%v ok=%v", r, ok)
	}
	// Missing target on one side.
	never := &Trace{Points: []Point{{Epoch: 1, Time: time.Second, Objective: 100}}}
	if _, ok := SpeedupRatio(never, fast, 1, 0.1); ok {
		t.Fatal("speedup computed for unreachable target")
	}
}

func TestAccuracy(t *testing.T) {
	if got := Accuracy([]int{1, 2, 3}, []int{1, 0, 3}); math.Abs(got-2.0/3) > 1e-12 {
		t.Fatalf("Accuracy=%v", got)
	}
	if Accuracy(nil, nil) != 0 {
		t.Fatal("empty accuracy should be 0")
	}
}

func TestAccuracyMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Accuracy([]int{1}, []int{1, 2})
}

func TestConfusionMatrix(t *testing.T) {
	m := ConfusionMatrix([]int{0, 1, 1}, []int{0, 0, 1}, 2)
	if m[0][0] != 1 || m[0][1] != 1 || m[1][1] != 1 || m[1][0] != 0 {
		t.Fatalf("confusion=%v", m)
	}
}

func TestPointString(t *testing.T) {
	p := Point{Epoch: 2, Time: time.Second, Objective: 1.5, TestAccuracy: 0.9}
	if p.String() == "" {
		t.Fatal("empty String")
	}
}
