package datasets

// The presets mirror Table 1 of the paper with sizes scaled to a single
// machine (the `scale` argument multiplies the default sample counts;
// scale <= 0 selects 1.0). Class and feature counts match the paper
// exactly except E18Like, whose 279,998-feature space is scaled to 27,998
// (the dimension quoted in the paper's §7 text) to fit laptop memory while
// keeping the problem firmly in Hessian-free territory.

func scaled(n int, scale float64) int {
	if scale <= 0 {
		scale = 1
	}
	v := int(float64(n) * scale)
	if v < 16 {
		v = 16
	}
	return v
}

// HiggsLike is the binary, low-dimensional, well-conditioned regime of
// HIGGS (2 classes, 28 features): both second-order methods reach the
// target in about one iteration on it.
func HiggsLike(scale float64) Config {
	return Config{
		Name:        "higgs-like",
		Samples:     scaled(40000, scale),
		TestSamples: scaled(8000, scale),
		Features:    28,
		Classes:     2,
		Seed:        101,
		Decay:       0.1,
		Noise:       1.5,
		Separation:  2,
	}
}

// MNISTLike is the 10-class, 784-feature, moderately conditioned regime
// of MNIST.
func MNISTLike(scale float64) Config {
	return Config{
		Name:        "mnist-like",
		Samples:     scaled(8000, scale),
		TestSamples: scaled(2000, scale),
		Features:    784,
		Classes:     10,
		Seed:        102,
		Decay:       0.6,
		Noise:       1,
		Separation:  4,
	}
}

// CIFARLike is the 10-class, 3072-feature, ill-conditioned regime of
// CIFAR-10: a heavy power-law feature-scale decay makes the Hessian
// spectrum span many orders of magnitude, which is what drives GIANT's
// iteration blow-up in the paper's Figure 3.
func CIFARLike(scale float64) Config {
	return Config{
		Name:        "cifar-like",
		Samples:     scaled(4000, scale),
		TestSamples: scaled(1000, scale),
		Features:    3072,
		Classes:     10,
		Seed:        103,
		Decay:       1.3,
		Noise:       2,
		Separation:  6,
	}
}

// E18Like is the 20-class, high-dimensional sparse regime of E18
// (paper: 1.3M cells x 279,998 genes; here 27,998 features at 2% density),
// the case where forming the Hessian explicitly is impossible and the
// Hessian-free path is mandatory.
func E18Like(scale float64) Config {
	return Config{
		Name:        "e18-like",
		Samples:     scaled(3000, scale),
		TestSamples: scaled(600, scale),
		Features:    27998,
		Classes:     20,
		Seed:        104,
		Sparsity:    0.02,
		Decay:       0.4,
		Noise:       1.2,
		Separation:  8,
	}
}

// Presets returns the four Table 1 analogues at the given scale.
func Presets(scale float64) []Config {
	return []Config{HiggsLike(scale), MNISTLike(scale), CIFARLike(scale), E18Like(scale)}
}

// PresetByName resolves "higgs", "mnist", "cifar", or "e18" (with or
// without the "-like" suffix) at the given scale; ok is false for unknown
// names.
func PresetByName(name string, scale float64) (Config, bool) {
	switch name {
	case "higgs", "higgs-like":
		return HiggsLike(scale), true
	case "mnist", "mnist-like":
		return MNISTLike(scale), true
	case "cifar", "cifar-10", "cifar-like":
		return CIFARLike(scale), true
	case "e18", "e18-like":
		return E18Like(scale), true
	}
	return Config{}, false
}
