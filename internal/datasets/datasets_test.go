package datasets

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"newtonadmm/internal/device"
	"newtonadmm/internal/linalg"
	"newtonadmm/internal/loss"
)

var testDev = device.New("datasets-test", 2)

func TestGenerateShapes(t *testing.T) {
	d, err := Generate(Config{
		Name: "t", Samples: 100, TestSamples: 20, Features: 7, Classes: 3, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if d.TrainSize() != 100 || d.TestSize() != 20 || d.NumFeatures() != 7 {
		t.Fatalf("shapes: train=%d test=%d p=%d", d.TrainSize(), d.TestSize(), d.NumFeatures())
	}
	if d.Dim() != 2*7 {
		t.Fatalf("Dim=%d, want 14", d.Dim())
	}
	if len(d.Ytrain) != 100 || len(d.Ytest) != 20 {
		t.Fatal("label lengths")
	}
}

func TestGenerateValidation(t *testing.T) {
	if _, err := Generate(Config{Samples: 10, Features: 2, Classes: 1}); err == nil {
		t.Fatal("classes=1 accepted")
	}
	if _, err := Generate(Config{Samples: 0, Features: 2, Classes: 2}); err == nil {
		t.Fatal("samples=0 accepted")
	}
	if _, err := Generate(Config{Samples: 10, Features: 2, Classes: 2, Sparsity: 1.5}); err == nil {
		t.Fatal("sparsity>1 accepted")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := Config{Name: "t", Samples: 50, Features: 5, Classes: 4, Seed: 42}
	a, _ := Generate(cfg)
	b, _ := Generate(cfg)
	for i := range a.Ytrain {
		if a.Ytrain[i] != b.Ytrain[i] {
			t.Fatal("labels differ across identical seeds")
		}
	}
	am := a.Xtrain.(loss.Dense).M
	bm := b.Xtrain.(loss.Dense).M
	for i := range am.Data {
		if am.Data[i] != bm.Data[i] {
			t.Fatal("features differ across identical seeds")
		}
	}
	c, _ := Generate(Config{Name: "t", Samples: 50, Features: 5, Classes: 4, Seed: 43})
	cm := c.Xtrain.(loss.Dense).M
	same := true
	for i := range am.Data {
		if am.Data[i] != cm.Data[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical data")
	}
}

func TestGenerateAllClassesPresent(t *testing.T) {
	d, err := Generate(Config{Name: "t", Samples: 2000, Features: 10, Classes: 5, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	h := ClassHistogram(d.Ytrain, 5)
	for c, cnt := range h {
		if cnt == 0 {
			t.Fatalf("class %d absent: %v", c, h)
		}
	}
}

func TestGenerateSparse(t *testing.T) {
	d, err := Generate(Config{
		Name: "t", Samples: 200, TestSamples: 40, Features: 100, Classes: 3,
		Seed: 9, Sparsity: 0.1,
	})
	if err != nil {
		t.Fatal(err)
	}
	sp, ok := d.Xtrain.(loss.Sparse)
	if !ok {
		t.Fatal("expected sparse features")
	}
	density := float64(sp.M.NNZ()) / float64(200*100)
	if density < 0.05 || density > 0.2 {
		t.Fatalf("density %v far from requested 0.1", density)
	}
}

func TestGeneratedProblemIsLearnable(t *testing.T) {
	// A planted model must be learnable well above chance by its own
	// softmax objective — the property every experiment relies on.
	d, err := Generate(Config{
		Name: "t", Samples: 1500, TestSamples: 400, Features: 20, Classes: 3,
		Seed: 11, Separation: 4, Noise: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	prob, err := loss.NewSoftmax(testDev, d.Xtrain, d.Ytrain, d.Classes, 1e-4)
	if err != nil {
		t.Fatal(err)
	}
	// A few crude gradient-descent steps are enough to beat chance.
	w := make([]float64, prob.Dim())
	g := make([]float64, prob.Dim())
	for it := 0; it < 60; it++ {
		prob.Gradient(w, g)
		linalg.Axpy(-0.5/float64(prob.N()), g, w)
	}
	acc := prob.Accuracy(d.Xtest, d.Ytest, w)
	if acc < 0.55 { // chance is 1/3
		t.Fatalf("test accuracy %v barely above chance", acc)
	}
}

func TestDecayControlsConditioning(t *testing.T) {
	// Higher Decay concentrates feature variance in early coordinates;
	// verify via the ratio of first/last column second moments.
	mk := func(decay float64) *linalg.Matrix {
		d, err := Generate(Config{Name: "t", Samples: 400, Features: 30, Classes: 2, Seed: 5, Decay: decay})
		if err != nil {
			t.Fatal(err)
		}
		return d.Xtrain.(loss.Dense).M
	}
	colVar := func(m *linalg.Matrix, j int) float64 {
		var ssq float64
		for i := 0; i < m.Rows; i++ {
			v := m.At(i, j)
			ssq += v * v
		}
		return ssq / float64(m.Rows)
	}
	flat := mk(0)
	steep := mk(1.5)
	flatRatio := colVar(flat, 0) / colVar(flat, 29)
	steepRatio := colVar(steep, 0) / colVar(steep, 29)
	if steepRatio < 50*flatRatio {
		t.Fatalf("decay did not steepen spectrum: flat=%v steep=%v", flatRatio, steepRatio)
	}
}

func TestShardPartition(t *testing.T) {
	n, ranks := 103, 4
	seen := make([]bool, n)
	for r := 0; r < ranks; r++ {
		for _, i := range Shard(n, ranks, r) {
			if seen[i] {
				t.Fatalf("index %d in two shards", i)
			}
			seen[i] = true
		}
	}
	for i, s := range seen {
		if !s {
			t.Fatalf("index %d unassigned", i)
		}
	}
	// Shards are balanced within 1.
	min, max := n, 0
	for r := 0; r < ranks; r++ {
		l := len(Shard(n, ranks, r))
		if l < min {
			min = l
		}
		if l > max {
			max = l
		}
	}
	if max-min > 1 {
		t.Fatalf("imbalanced shards: min=%d max=%d", min, max)
	}
}

func TestPresetsMatchTable1Character(t *testing.T) {
	cases := []struct {
		cfg      Config
		classes  int
		features int
		sparse   bool
	}{
		{HiggsLike(0.01), 2, 28, false},
		{MNISTLike(0.01), 10, 784, false},
		{CIFARLike(0.01), 10, 3072, false},
		{E18Like(0.01), 20, 27998, true},
	}
	for _, c := range cases {
		if c.cfg.Classes != c.classes || c.cfg.Features != c.features {
			t.Fatalf("%s: classes=%d features=%d", c.cfg.Name, c.cfg.Classes, c.cfg.Features)
		}
		if (c.cfg.Sparsity > 0) != c.sparse {
			t.Fatalf("%s: sparsity=%v", c.cfg.Name, c.cfg.Sparsity)
		}
	}
}

func TestPresetByName(t *testing.T) {
	for _, name := range []string{"higgs", "mnist", "cifar", "e18", "mnist-like"} {
		if _, ok := PresetByName(name, 1); !ok {
			t.Fatalf("preset %q not found", name)
		}
	}
	if _, ok := PresetByName("imagenet", 1); ok {
		t.Fatal("unknown preset resolved")
	}
}

func TestLIBSVMRoundTrip(t *testing.T) {
	d, err := Generate(Config{
		Name: "t", Samples: 30, Features: 12, Classes: 3, Seed: 77, Sparsity: 0.3,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteLIBSVM(&buf, d.Xtrain, d.Ytrain); err != nil {
		t.Fatal(err)
	}
	x2, y2, classes, err := ReadLIBSVM(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if classes > 3 {
		t.Fatalf("classes=%d, want <=3", classes)
	}
	if x2.Rows() != 30 {
		t.Fatalf("rows=%d", x2.Rows())
	}
	// Labels were already 0..C-1 written as text and re-mapped in first
	// appearance order; check round-trip consistency sample-to-sample.
	first := map[int]int{}
	for i, orig := range d.Ytrain {
		if mapped, ok := first[orig]; ok {
			if y2[i] != mapped {
				t.Fatalf("label remap inconsistent at %d", i)
			}
		} else {
			first[orig] = y2[i]
		}
	}
	// Feature values must survive (columns may shrink if trailing
	// features were all-zero).
	orig := d.Xtrain.(loss.Sparse).M
	got := x2.(loss.Sparse).M
	for i := 0; i < 30; i++ {
		for k := orig.RowPtr[i]; k < orig.RowPtr[i+1]; k++ {
			j := orig.Col[k]
			if j >= got.NumCols {
				if orig.Val[k] != 0 {
					t.Fatalf("lost nonzero at (%d,%d)", i, j)
				}
				continue
			}
			if math.Abs(got.At(i, j)-orig.Val[k]) > 1e-12 {
				t.Fatalf("value mismatch at (%d,%d): %v vs %v", i, j, got.At(i, j), orig.Val[k])
			}
		}
	}
}

func TestReadLIBSVMErrors(t *testing.T) {
	if _, _, _, err := ReadLIBSVM(strings.NewReader("")); err == nil {
		t.Fatal("empty input accepted")
	}
	if _, _, _, err := ReadLIBSVM(strings.NewReader("1 bogus")); err == nil {
		t.Fatal("malformed feature accepted")
	}
	if _, _, _, err := ReadLIBSVM(strings.NewReader("1 0:3.5")); err == nil {
		t.Fatal("0-based index accepted")
	}
	if _, _, _, err := ReadLIBSVM(strings.NewReader("1 2:xyz")); err == nil {
		t.Fatal("non-numeric value accepted")
	}
}

func TestReadLIBSVMSkipsCommentsAndBlanks(t *testing.T) {
	in := "# header\n\n+1 1:2.0 3:1.5\n-1 2:0.5\n"
	x, y, classes, err := ReadLIBSVM(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if x.Rows() != 2 || classes != 2 {
		t.Fatalf("rows=%d classes=%d", x.Rows(), classes)
	}
	if y[0] == y[1] {
		t.Fatal("labels collapsed")
	}
}

func TestSortedLabelSet(t *testing.T) {
	got := SortedLabelSet([]int{3, 1, 3, 0, 1})
	want := []int{0, 1, 3}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}
