package datasets

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"newtonadmm/internal/loss"
	"newtonadmm/internal/sparse"
)

// ReadLIBSVM parses the LIBSVM/SVMLight text format
// ("label idx:val idx:val ..."), the distribution format of HIGGS, MNIST
// and CIFAR-10 on the LIBSVM site. Labels may be arbitrary numeric class
// ids; they are densely re-mapped to 0..C-1 in order of first appearance,
// and 1-based feature indices become 0-based columns. The result is
// always sparse (CSR); callers can densify small matrices via ToDense.
func ReadLIBSVM(r io.Reader) (x loss.Features, y []int, classes int, err error) {
	scanner := bufio.NewScanner(r)
	scanner.Buffer(make([]byte, 1<<20), 1<<24)
	var entries []sparse.Coord
	labelIDs := map[string]int{}
	maxCol := -1
	row := 0
	for scanner.Scan() {
		line := strings.TrimSpace(scanner.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		lbl := fields[0]
		id, ok := labelIDs[lbl]
		if !ok {
			id = len(labelIDs)
			labelIDs[lbl] = id
		}
		y = append(y, id)
		for _, f := range fields[1:] {
			colon := strings.IndexByte(f, ':')
			if colon < 0 {
				return nil, nil, 0, fmt.Errorf("datasets: line %d: bad feature %q", row+1, f)
			}
			idx, err := strconv.Atoi(f[:colon])
			if err != nil || idx < 1 {
				return nil, nil, 0, fmt.Errorf("datasets: line %d: bad index %q", row+1, f[:colon])
			}
			val, err := strconv.ParseFloat(f[colon+1:], 64)
			if err != nil {
				return nil, nil, 0, fmt.Errorf("datasets: line %d: bad value %q", row+1, f[colon+1:])
			}
			col := idx - 1
			if col > maxCol {
				maxCol = col
			}
			entries = append(entries, sparse.Coord{Row: row, Col: col, Val: val})
		}
		row++
	}
	if err := scanner.Err(); err != nil {
		return nil, nil, 0, err
	}
	if row == 0 {
		return nil, nil, 0, fmt.Errorf("datasets: empty LIBSVM input")
	}
	csr, err := sparse.FromCoords(row, maxCol+1, entries)
	if err != nil {
		return nil, nil, 0, err
	}
	return loss.Sparse{M: csr}, y, len(labelIDs), nil
}

// WriteLIBSVM writes features and labels in LIBSVM format (1-based
// indices, zeros omitted).
func WriteLIBSVM(w io.Writer, x loss.Features, y []int) error {
	bw := bufio.NewWriter(w)
	switch f := x.(type) {
	case loss.Sparse:
		for i := 0; i < f.M.NumRows; i++ {
			if _, err := fmt.Fprintf(bw, "%d", y[i]); err != nil {
				return err
			}
			for k := f.M.RowPtr[i]; k < f.M.RowPtr[i+1]; k++ {
				if _, err := fmt.Fprintf(bw, " %d:%g", f.M.Col[k]+1, f.M.Val[k]); err != nil {
					return err
				}
			}
			if err := bw.WriteByte('\n'); err != nil {
				return err
			}
		}
	case loss.Dense:
		for i := 0; i < f.M.Rows; i++ {
			if _, err := fmt.Fprintf(bw, "%d", y[i]); err != nil {
				return err
			}
			for j, v := range f.M.Row(i) {
				if v != 0 {
					if _, err := fmt.Fprintf(bw, " %d:%g", j+1, v); err != nil {
						return err
					}
				}
			}
			if err := bw.WriteByte('\n'); err != nil {
				return err
			}
		}
	default:
		return fmt.Errorf("datasets: unknown Features implementation %T", x)
	}
	return bw.Flush()
}

// ClassHistogram returns the per-class sample counts, a quick sanity
// check that generated labels cover all classes.
func ClassHistogram(y []int, classes int) []int {
	h := make([]int, classes)
	for _, c := range y {
		if c >= 0 && c < classes {
			h[c]++
		}
	}
	return h
}

// SortedLabelSet returns the distinct labels present, ascending.
func SortedLabelSet(y []int) []int {
	set := map[int]bool{}
	for _, c := range y {
		set[c] = true
	}
	out := make([]int, 0, len(set))
	for c := range set {
		out = append(out, c)
	}
	sort.Ints(out)
	return out
}
