// Package datasets provides the evaluation corpora of the reproduction.
// The paper trains on HIGGS, MNIST, CIFAR-10 and E18 (Table 1); those
// files are not redistributable here, so this package generates synthetic
// analogues that match each dataset's problem character — class count,
// feature count, sparsity, and Hessian conditioning — which are the
// properties the paper's comparisons actually exercise (see DESIGN.md).
// A LIBSVM reader is included for running on the real files when present.
package datasets

import (
	"fmt"
	"math"
	"math/rand"

	"newtonadmm/internal/linalg"
	"newtonadmm/internal/loss"
	"newtonadmm/internal/sparse"
)

// Config describes a synthetic classification dataset drawn from a
// planted softmax model: ground-truth weights W* are sampled, features are
// Gaussian with per-feature scale decay (which controls the condition
// number of the Hessian), and labels are drawn from the softmax
// probabilities at temperature Noise.
type Config struct {
	// Name labels the dataset in experiment output.
	Name string
	// Samples and TestSamples are the train/test sizes.
	Samples, TestSamples int
	// Features is the raw feature dimension p.
	Features int
	// Classes is the number of classes C >= 2.
	Classes int
	// Seed makes generation deterministic.
	Seed int64
	// Sparsity in (0,1] stores features as CSR with that density;
	// 0 generates dense features.
	Sparsity float64
	// Decay is the feature-scale power-law exponent: feature j has scale
	// (j+1)^-Decay. Zero gives an isotropic, well-conditioned problem;
	// larger values give ill-conditioned Hessians (the CIFAR-10 regime).
	Decay float64
	// Noise is the label temperature; higher means noisier labels.
	// <= 0 selects 1.
	Noise float64
	// Separation scales the planted weights; <= 0 selects 1.
	Separation float64
}

// Dataset is an in-memory classification dataset.
type Dataset struct {
	Name    string
	Classes int
	// Train/Test features and labels.
	Xtrain, Xtest loss.Features
	Ytrain, Ytest []int
}

// NumFeatures returns the raw feature dimension p.
func (d *Dataset) NumFeatures() int { return d.Xtrain.Cols() }

// TrainSize returns the number of training samples.
func (d *Dataset) TrainSize() int { return d.Xtrain.Rows() }

// TestSize returns the number of test samples.
func (d *Dataset) TestSize() int {
	if d.Xtest == nil {
		return 0
	}
	return d.Xtest.Rows()
}

// Dim returns the optimization dimension (C-1)*p.
func (d *Dataset) Dim() int { return (d.Classes - 1) * d.NumFeatures() }

func (c Config) withDefaults() Config {
	if c.Noise <= 0 {
		c.Noise = 1
	}
	if c.Separation <= 0 {
		c.Separation = 1
	}
	return c
}

// Generate builds the dataset described by cfg.
func Generate(cfg Config) (*Dataset, error) {
	cfg = cfg.withDefaults()
	if cfg.Classes < 2 {
		return nil, fmt.Errorf("datasets: need >= 2 classes, got %d", cfg.Classes)
	}
	if cfg.Samples <= 0 || cfg.Features <= 0 {
		return nil, fmt.Errorf("datasets: need positive samples and features")
	}
	if cfg.Sparsity < 0 || cfg.Sparsity > 1 {
		return nil, fmt.Errorf("datasets: sparsity %v outside [0,1]", cfg.Sparsity)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	p, m := cfg.Features, cfg.Classes-1
	scales := make([]float64, p)
	var scaleEnergy float64
	for j := range scales {
		scales[j] = math.Pow(float64(j+1), -cfg.Decay)
		scaleEnergy += scales[j] * scales[j]
	}
	// Planted weights, normalized by the feature-scale energy so that the
	// per-class score standard deviation is Separation regardless of Decay
	// (features have E[x_j^2] = scales[j]^2 in both the dense and the
	// sparse branch, so Var(<x, w_c>) = sum_j scales[j]^2 w_cj^2). Without
	// this the decayed presets planted signal far below their label noise
	// and test accuracy stayed at chance (see ROADMAP).
	wTrue := make([]float64, m*p)
	for i := range wTrue {
		wTrue[i] = cfg.Separation * rng.NormFloat64() / math.Sqrt(scaleEnergy)
	}

	total := cfg.Samples + cfg.TestSamples
	var x loss.Features
	var csrEntries []sparse.Coord
	var dense *linalg.Matrix
	if cfg.Sparsity > 0 && cfg.Sparsity < 1 {
		inv := 1 / math.Sqrt(cfg.Sparsity)
		for i := 0; i < total; i++ {
			for j := 0; j < p; j++ {
				if rng.Float64() < cfg.Sparsity {
					csrEntries = append(csrEntries, sparse.Coord{
						Row: i, Col: j, Val: scales[j] * rng.NormFloat64() * inv,
					})
				}
			}
		}
		csr, err := sparse.FromCoords(total, p, csrEntries)
		if err != nil {
			return nil, err
		}
		x = loss.Sparse{M: csr}
	} else {
		dense = linalg.NewMatrix(total, p)
		for i := 0; i < total; i++ {
			row := dense.Row(i)
			for j := 0; j < p; j++ {
				row[j] = scales[j] * rng.NormFloat64()
			}
		}
		x = loss.Dense{M: dense}
	}

	// Labels from the planted softmax at temperature Noise. Scores are
	// computed serially here (generation is one-time work).
	y := make([]int, total)
	scoreBuf := make([]float64, m)
	probBuf := make([]float64, m+1)
	for i := 0; i < total; i++ {
		row := featureRow(x, i)
		for c := 0; c < m; c++ {
			scoreBuf[c] = linalg.Dot(row, wTrue[c*p:(c+1)*p]) / cfg.Noise
		}
		y[i] = sampleSoftmax(rng, scoreBuf, probBuf)
	}

	train := indexRange(0, cfg.Samples)
	test := indexRange(cfg.Samples, total)
	d := &Dataset{
		Name:    cfg.Name,
		Classes: cfg.Classes,
		Xtrain:  x.Subset(train),
		Ytrain:  subsetInts(y, train),
	}
	if cfg.TestSamples > 0 {
		d.Xtest = x.Subset(test)
		d.Ytest = subsetInts(y, test)
	}
	return d, nil
}

// featureRow materializes row i of any Features implementation.
func featureRow(x loss.Features, i int) []float64 {
	switch f := x.(type) {
	case loss.Dense:
		return f.M.Row(i)
	case loss.Sparse:
		row := make([]float64, f.M.NumCols)
		for k := f.M.RowPtr[i]; k < f.M.RowPtr[i+1]; k++ {
			row[f.M.Col[k]] = f.M.Val[k]
		}
		return row
	default:
		panic("datasets: unknown Features implementation")
	}
}

// sampleSoftmax draws a class from the softmax over scores (with the
// implicit reference class scoring zero), using the stabilized form.
func sampleSoftmax(rng *rand.Rand, scores, prob []float64) int {
	m := len(scores)
	mx := 0.0
	for _, s := range scores {
		if s > mx {
			mx = s
		}
	}
	var total float64
	for c := 0; c < m; c++ {
		prob[c] = math.Exp(scores[c] - mx)
		total += prob[c]
	}
	prob[m] = math.Exp(-mx) // reference class
	total += prob[m]
	u := rng.Float64() * total
	var acc float64
	for c := 0; c <= m; c++ {
		acc += prob[c]
		if u <= acc {
			return c
		}
	}
	return m
}

func indexRange(lo, hi int) []int {
	idx := make([]int, hi-lo)
	for i := range idx {
		idx[i] = lo + i
	}
	return idx
}

func subsetInts(y []int, idx []int) []int {
	out := make([]int, len(idx))
	for k, i := range idx {
		out[k] = y[i]
	}
	return out
}

// Shard returns the row indices of rank r's contiguous shard when the
// training set is split across `ranks` nodes (paper's strong scaling).
func Shard(n, ranks, r int) []int {
	lo := r * n / ranks
	hi := (r + 1) * n / ranks
	return indexRange(lo, hi)
}
