package newtonadmm

import (
	"math"
	"os"
	"path/filepath"
	"testing"
)

func quickDataset(t *testing.T) *Dataset {
	t.Helper()
	ds, err := GenerateDataset(DatasetOptions{
		Name: "api-test", Samples: 400, TestSamples: 120, Features: 10,
		Classes: 3, Seed: 7, Separation: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestDatasetAccessors(t *testing.T) {
	ds := quickDataset(t)
	if ds.Name() != "api-test" || ds.Classes() != 3 || ds.Features() != 10 {
		t.Fatalf("accessors: %s %d %d", ds.Name(), ds.Classes(), ds.Features())
	}
	if ds.TrainSize() != 400 || ds.TestSize() != 120 {
		t.Fatalf("sizes: %d %d", ds.TrainSize(), ds.TestSize())
	}
}

func TestPresetDataset(t *testing.T) {
	ds, err := PresetDataset("higgs", 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Classes() != 2 || ds.Features() != 28 {
		t.Fatalf("higgs preset: %d classes, %d features", ds.Classes(), ds.Features())
	}
	if _, err := PresetDataset("nope", 1); err == nil {
		t.Fatal("unknown preset accepted")
	}
}

func TestTrainAllSolvers(t *testing.T) {
	ds := quickDataset(t)
	for _, solver := range []string{
		SolverNewtonADMM, SolverGIANT, SolverInexactDANE,
		SolverAIDE, SolverDiSCO, SolverSyncSGD, SolverNewton,
	} {
		opts := Options{
			Solver: solver, Ranks: 2, Epochs: 5, Lambda: 1e-3,
			Network: "none", EvalTestAccuracy: true, StepSize: 1, Tau: 1,
		}
		m, err := Train(ds, opts)
		if err != nil {
			t.Fatalf("%s: %v", solver, err)
		}
		if len(m.Weights) != 2*10 {
			t.Fatalf("%s: weight dim %d", solver, len(m.Weights))
		}
		if len(m.Trace) == 0 {
			t.Fatalf("%s: empty trace", solver)
		}
		first, last := m.Trace[0], m.Trace[len(m.Trace)-1]
		if !(last.Objective < first.Objective) {
			t.Fatalf("%s: no objective progress (%v -> %v)", solver, first.Objective, last.Objective)
		}
	}
}

func TestTrainDefaultSolverReachesGoodAccuracy(t *testing.T) {
	ds := quickDataset(t)
	m, err := Train(ds, Options{Epochs: 40, Lambda: 1e-4, Network: "none", EvalTestAccuracy: true})
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(m.TestAccuracy) || m.TestAccuracy < 0.55 {
		t.Fatalf("test accuracy %v", m.TestAccuracy)
	}
	if m.Solver != SolverNewtonADMM {
		t.Fatalf("default solver %q", m.Solver)
	}
	if m.AvgEpochTime <= 0 || m.TotalTime <= 0 {
		t.Fatalf("timings: %v %v", m.AvgEpochTime, m.TotalTime)
	}
}

func TestTrainValidation(t *testing.T) {
	ds := quickDataset(t)
	if _, err := Train(nil, Options{}); err == nil {
		t.Fatal("nil dataset accepted")
	}
	if _, err := Train(ds, Options{Solver: "bogus"}); err == nil {
		t.Fatal("unknown solver accepted")
	}
	if _, err := Train(ds, Options{Network: "carrier-pigeon"}); err == nil {
		t.Fatal("unknown network accepted")
	}
}

func TestModelPredictAndEvaluate(t *testing.T) {
	ds := quickDataset(t)
	m, err := Train(ds, Options{Epochs: 30, Lambda: 1e-4, Network: "none"})
	if err != nil {
		t.Fatal(err)
	}
	train, test, err := m.Evaluate(ds)
	if err != nil {
		t.Fatal(err)
	}
	if train < 0.6 || math.IsNaN(test) {
		t.Fatalf("evaluate: train=%v test=%v", train, test)
	}
	pred, err := m.Predict([][]float64{make([]float64, 10)})
	if err != nil {
		t.Fatal(err)
	}
	if len(pred) != 1 || pred[0] < 0 || pred[0] >= 3 {
		t.Fatalf("predict: %v", pred)
	}
	if _, err := m.Predict([][]float64{make([]float64, 3)}); err == nil {
		t.Fatal("wrong feature count accepted")
	}
	if got, _ := m.Predict(nil); got != nil {
		t.Fatal("empty predict should return nil")
	}
}

func TestModelSaveLoadRoundTrip(t *testing.T) {
	ds := quickDataset(t)
	m, err := Train(ds, Options{Epochs: 10, Lambda: 1e-3, Network: "none"})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "model.gob")
	if err := m.Save(path); err != nil {
		t.Fatal(err)
	}
	m2, err := LoadModel(path)
	if err != nil {
		t.Fatal(err)
	}
	if m2.Classes != m.Classes || m2.Features != m.Features || len(m2.Weights) != len(m.Weights) {
		t.Fatal("model metadata lost")
	}
	for i := range m.Weights {
		if m2.Weights[i] != m.Weights[i] {
			t.Fatal("weights corrupted")
		}
	}
}

func TestLoadLIBSVMRoundTrip(t *testing.T) {
	dir := t.TempDir()
	train := filepath.Join(dir, "train.svm")
	content := "0 1:1.5 3:-2\n1 2:0.5\n0 1:1 2:1 3:1\n1 3:2\n"
	if err := os.WriteFile(train, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	ds, err := LoadLIBSVM(train, train)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Classes() != 2 || ds.TrainSize() != 4 || ds.TestSize() != 4 {
		t.Fatalf("loaded: %d classes, %d train, %d test", ds.Classes(), ds.TrainSize(), ds.TestSize())
	}
	if _, err := LoadLIBSVM(filepath.Join(dir, "missing.svm"), ""); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestNetworkByName(t *testing.T) {
	for _, name := range []string{"", "infiniband", "10g", "1g", "wan", "none"} {
		if _, err := NetworkByName(name); err != nil {
			t.Fatalf("network %q: %v", name, err)
		}
	}
	if _, err := NetworkByName("5g"); err == nil {
		t.Fatal("unknown network accepted")
	}
}

func TestTrainOverTCP(t *testing.T) {
	ds := quickDataset(t)
	m, err := Train(ds, Options{Epochs: 5, Lambda: 1e-3, Network: "none", UseTCP: true, Ranks: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Trace) == 0 {
		t.Fatal("no trace over TCP")
	}
}
