// Command nadmm-serve is the online inference server: it loads a model
// checkpoint written by nadmm-train -save (or Model.Save) and serves
// predictions over HTTP with dynamic micro-batching, bounded-queue
// backpressure, and zero-downtime checkpoint hot-swap.
//
// Endpoints (kserve-style):
//
//	POST /v1/predict  {"instances":[[...dense...], {"indices":[...],"values":[...]}, ...]}
//	POST /v1/proba    same body; adds class probabilities
//	GET  /healthz     readiness + model metadata
//	GET  /metricz     latency quantiles, batch sizes, device counters
//	POST /v1/reload   re-read the checkpoint and hot-swap it in
//
// Examples:
//
//	nadmm-train -preset mnist -save model.gob
//	nadmm-serve -model model.gob -addr :8080
//	curl -s localhost:8080/healthz
//	curl -s -X POST localhost:8080/v1/predict -d '{"instances":[[0.1, 0.2, ...]]}'
//
//	# zero-downtime deploy: retrain into the same path, then either
//	curl -s -X POST localhost:8080/v1/reload     # explicit
//	nadmm-serve -model model.gob -watch 5s       # or polled
package main

import (
	"flag"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"newtonadmm"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("nadmm-serve: ")

	var (
		model    = flag.String("model", "", "model checkpoint (gob) to serve (required)")
		addr     = flag.String("addr", ":8080", "listen address")
		maxBatch = flag.Int("max-batch", 64, "micro-batch size cap (rows per kernel launch)")
		linger   = flag.Duration("linger", 200*time.Microsecond, "micro-batch flush window (negative disables)")
		queue    = flag.Int("queue", 0, "admission queue depth (0 = 4*max-batch); full queue returns 429")
		workers  = flag.Int("workers", 0, "device workers (0 = NumCPU)")
		watch    = flag.Duration("watch", 0, "poll the checkpoint at this interval and hot-swap on change (0 disables)")
	)
	flag.Parse()

	if *model == "" {
		flag.Usage()
		os.Exit(2)
	}
	m, err := newtonadmm.LoadModel(*model)
	if err != nil {
		log.Fatalf("loading %s: %v", *model, err)
	}
	log.Printf("loaded %s: %d classes, %d features (solver %s)", *model, m.Classes, m.Features, m.Solver)

	srv, err := newtonadmm.Serve(m, newtonadmm.ServeOptions{
		Addr: *addr, MaxBatch: *maxBatch, Linger: *linger, QueueDepth: *queue,
		Workers: *workers, ModelPath: *model, Watch: *watch,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	log.Printf("serving on %s (max-batch %d, linger %v)", srv.Addr(), *maxBatch, *linger)
	if *watch > 0 {
		log.Printf("watching %s every %v for hot-swap", *model, *watch)
	}

	// SIGHUP hot-swaps the checkpoint; SIGINT/SIGTERM shut down.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM, syscall.SIGHUP)
	for s := range sig {
		if s != syscall.SIGHUP {
			log.Printf("received %v, shutting down", s)
			return
		}
		nm, err := newtonadmm.LoadModel(*model)
		if err != nil {
			log.Printf("SIGHUP reload failed: %v", err)
			continue
		}
		v, err := srv.Swap(nm)
		if err != nil {
			log.Printf("SIGHUP swap failed: %v", err)
			continue
		}
		log.Printf("SIGHUP: hot-swapped %s as model version %d", *model, v)
	}
}
