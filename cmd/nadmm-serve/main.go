// Command nadmm-serve is the online inference server: it loads a model
// checkpoint written by nadmm-train -save (or Model.Save) and serves
// predictions over HTTP with dynamic micro-batching, bounded-queue
// backpressure, and zero-downtime checkpoint hot-swap. It can also run
// as one node of a serving fleet: a scatter-gather router over N
// predictor replicas (in-process or separate processes), or a
// class-shard replica serving a slice of the model behind such a router.
//
// Endpoints (kserve-style):
//
//	POST /v1/predict  {"instances":[[...dense...], {"indices":[...],"values":[...]}, ...]}
//	POST /v1/proba    same body; adds class probabilities
//	POST /v1/scores   raw partial logits (the class-shard data plane)
//	GET  /healthz     readiness + model metadata (+ per-replica states on a router)
//	GET  /metricz     latency quantiles, batch sizes, device counters
//	POST /v1/reload   re-read the checkpoint and hot-swap it in (a router
//	                  coordinates the reload across all replicas)
//
// Examples:
//
//	nadmm-train -preset mnist -save model.gob
//	nadmm-serve -model model.gob -addr :8080
//	curl -s localhost:8080/healthz
//	curl -s -X POST localhost:8080/v1/predict -d '{"instances":[[0.1, 0.2, ...]]}'
//
//	# zero-downtime deploy: retrain into the same path, then either
//	curl -s -X POST localhost:8080/v1/reload     # explicit
//	nadmm-serve -model model.gob -watch 5s       # or polled
//
//	# in-process serving fleet: 4 whole-model replicas, least-loaded routing
//	nadmm-serve -model model.gob -addr :8080 -replicas 4
//
//	# in-process class-sharded fleet: partial-logit scatter-gather
//	nadmm-serve -model model.gob -addr :8080 -replicas 2 -shard-mode class
//
//	# replicated R x S grid: 2 class shards x 2 zone-spread siblings
//	# each — any single replica death fails over to its shard sibling
//	# and is never client-visible
//	nadmm-serve -model model.gob -addr :8080 -replicas 2 -shard-mode class \
//	    -replicas-per-shard 2 -zone zone-a,zone-b
//
//	# multi-process class-sharded fleet: two shard replicas + a router
//	nadmm-serve -model model.gob -addr :8081 -shard-index 0 -shard-count 2 &
//	nadmm-serve -model model.gob -addr :8082 -shard-index 1 -shard-count 2 &
//	nadmm-serve -addr :8080 -shard-mode class -join http://127.0.0.1:8081,http://127.0.0.1:8082
//
//	# the same fleet on the binary data plane: replicas expose a frame
//	# listener with -wire-addr, the router joins it via tcp:// URLs
//	# (clients still speak JSON to the router; see DESIGN.md "Binary
//	# data plane")
//	nadmm-serve -model model.gob -addr :8081 -wire-addr :9081 -shard-index 0 -shard-count 2 &
//	nadmm-serve -model model.gob -addr :8082 -wire-addr :9082 -shard-index 1 -shard-count 2 &
//	nadmm-serve -addr :8080 -shard-mode class -join tcp://127.0.0.1:9081,tcp://127.0.0.1:9082
package main

import (
	"flag"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"newtonadmm"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("nadmm-serve: ")

	var (
		model    = flag.String("model", "", "model checkpoint (gob) to serve (required unless -join)")
		addr     = flag.String("addr", ":8080", "listen address")
		maxBatch = flag.Int("max-batch", 64, "micro-batch size cap (rows per kernel launch)")
		linger   = flag.Duration("linger", 200*time.Microsecond, "micro-batch flush window (negative disables)")
		queue    = flag.Int("queue", 0, "admission queue depth (0 = 4*max-batch); full queue returns 429")
		workers  = flag.Int("workers", 0, "device workers (0 = NumCPU)")
		watch    = flag.Duration("watch", 0, "poll the checkpoint at this interval and hot-swap on change (0 disables)")

		wireAddr = flag.String("wire-addr", "", "also listen here with the binary frame data plane (join it with tcp:// from a router)")

		replicas  = flag.Int("replicas", 1, "serve through a router over this many in-process replicas (>1 enables the fleet; class mode: the shard count S)")
		perShard  = flag.Int("replicas-per-shard", 1, "in-process siblings per class shard (R; >1 builds an R x S replicated grid with per-shard failover)")
		shardMode = flag.String("shard-mode", "replica", "fleet placement: replica (whole-model copies) or class (class-sharded partial logits)")
		join      = flag.String("join", "", "comma-separated replica base URLs to route over instead of in-process replicas (tcp:// = binary plane, http:// = JSON)")
		wirePlane = flag.String("wire", "json", "data plane for scheme-less -join addresses: json or binary")

		shardIndex = flag.Int("shard-index", 0, "serve class shard N of -shard-count (replica side of a multi-process fleet)")
		shardCount = flag.Int("shard-count", 0, "total class shards; > 0 makes this server a shard replica")
		zone       = flag.String("zone", "", "failure-domain label: single server advertises it on /healthz and the wire meta; a router with in-process replicas takes a comma-separated list spread across each shard's siblings")

		sampleEvery = flag.Int("sample-every", 0, "observability sampling period: every Nth request is latency-stamped and trace-captured (0 = default 8, negative disables)")
		debug       = flag.Bool("debug", false, "mount net/http/pprof under /debug/pprof/ (exposes stack traces; opt-in)")

		admission = flag.String("admission", "none", "admission policy: none, token-bucket (requests/s), or cost (rows x features units/s)")
		admRate   = flag.Float64("admission-rate", 0, "admission refill rate (requests/s for token-bucket, cost units/s for cost)")
		admBurst  = flag.Int("admission-burst", 0, "admission burst capacity (0 = max(rate,1))")

		asMin      = flag.Int("autoscale-min", 0, "autoscaler floor (0 = the initial replica count); router with in-process replicas only")
		asMax      = flag.Int("autoscale-max", 0, "autoscaler ceiling; > 0 enables the in-process autoscaler (replica mode only)")
		asP99      = flag.Duration("autoscale-target-p99", 0, "latency target driving scale-up (0 tracks utilization only)")
		asTick     = flag.Duration("autoscale-tick", 0, "autoscaler evaluation period (0 = 1s)")
		asCooldown = flag.Duration("autoscale-cooldown", 0, "override both scale cooldowns (0 keeps the 3s up / 10s down defaults)")
	)
	flag.Parse()

	var joins []string
	if *join != "" {
		for _, a := range strings.Split(*join, ",") {
			if a = strings.TrimSpace(a); a != "" {
				joins = append(joins, a)
			}
		}
	}

	if *replicas > 1 || *perShard > 1 || len(joins) > 0 {
		if *wireAddr != "" {
			// The frame listener is a replica-side surface; silently
			// ignoring the flag would leave a router downstream dialing
			// a port nothing listens on.
			log.Fatal("-wire-addr applies to replica servers, not the router (join replicas' frame listeners with tcp:// instead)")
		}
		var zones []string
		for _, z := range strings.Split(*zone, ",") {
			if z = strings.TrimSpace(z); z != "" {
				zones = append(zones, z)
			}
		}
		runRouter(*model, newtonadmm.RouterOptions{
			Addr: *addr, Replicas: *replicas, ReplicasPerShard: *perShard, Zones: zones,
			Mode: *shardMode, Join: joins, Wire: *wirePlane,
			MaxBatch: *maxBatch, Linger: *linger, QueueDepth: *queue, Workers: *workers,
			ModelPath: *model, SampleEvery: *sampleEvery, Debug: *debug,
			Admission: *admission, AdmissionRate: *admRate, AdmissionBurst: *admBurst,
			AutoscaleMin: *asMin, AutoscaleMax: *asMax, AutoscaleTargetP99: *asP99,
			AutoscaleTick: *asTick, AutoscaleCooldown: *asCooldown,
		})
		return
	}
	if *asMax > 0 {
		log.Fatal("-autoscale-max needs a router with in-process replicas (-replicas > 1)")
	}

	if *model == "" {
		flag.Usage()
		os.Exit(2)
	}
	m, err := newtonadmm.LoadModel(*model)
	if err != nil {
		log.Fatalf("loading %s: %v", *model, err)
	}
	log.Printf("loaded %s: %d classes, %d features (solver %s)", *model, m.Classes, m.Features, m.Solver)

	srv, err := newtonadmm.Serve(m, newtonadmm.ServeOptions{
		Addr: *addr, WireAddr: *wireAddr, MaxBatch: *maxBatch, Linger: *linger, QueueDepth: *queue,
		Workers: *workers, ModelPath: *model, Watch: *watch,
		ShardIndex: *shardIndex, ShardCount: *shardCount, Zone: *zone,
		SampleEvery: *sampleEvery, Debug: *debug,
		Admission: *admission, AdmissionRate: *admRate, AdmissionBurst: *admBurst,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	if *wireAddr != "" {
		log.Printf("binary data plane on %s (join with tcp://%s)", srv.WireAddr(), srv.WireAddr())
	}
	if *shardCount > 0 {
		log.Printf("serving class shard %d/%d on %s (max-batch %d, linger %v)",
			*shardIndex, *shardCount, srv.Addr(), *maxBatch, *linger)
	} else {
		log.Printf("serving on %s (max-batch %d, linger %v)", srv.Addr(), *maxBatch, *linger)
	}
	if *watch > 0 {
		log.Printf("watching %s every %v for hot-swap", *model, *watch)
	}

	// SIGHUP hot-swaps the checkpoint; SIGINT/SIGTERM shut down.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM, syscall.SIGHUP)
	for s := range sig {
		if s != syscall.SIGHUP {
			log.Printf("received %v, shutting down", s)
			return
		}
		nm, err := newtonadmm.LoadModel(*model)
		if err != nil {
			log.Printf("SIGHUP reload failed: %v", err)
			continue
		}
		v, err := srv.Swap(nm)
		if err != nil {
			log.Printf("SIGHUP swap failed: %v", err)
			continue
		}
		log.Printf("SIGHUP: hot-swapped %s as model version %d", *model, v)
	}
}

// runRouter starts the scatter-gather serving tier: in-process replicas
// built from the checkpoint, or remote replicas joined by URL (with the
// data plane negotiated per URL scheme).
func runRouter(model string, opts newtonadmm.RouterOptions) {
	var m *newtonadmm.Model
	if len(opts.Join) == 0 {
		if model == "" {
			log.Fatal("router with in-process replicas needs -model (or use -join)")
		}
		var err error
		m, err = newtonadmm.LoadModel(model)
		if err != nil {
			log.Fatalf("loading %s: %v", model, err)
		}
		log.Printf("loaded %s: %d classes, %d features (solver %s)", model, m.Classes, m.Features, m.Solver)
	}
	rs, err := newtonadmm.ServeSharded(m, opts)
	if err != nil {
		log.Fatal(err)
	}
	defer rs.Close()
	switch {
	case len(opts.Join) > 0:
		log.Printf("routing (%s mode) on %s over %d remote replicas: %s",
			opts.Mode, rs.Addr(), len(opts.Join), strings.Join(opts.Join, ", "))
	case opts.ReplicasPerShard > 1:
		log.Printf("routing (%s mode) on %s over a %dx%d in-process grid (%d shards x %d siblings)",
			opts.Mode, rs.Addr(), opts.ReplicasPerShard, opts.Replicas, opts.Replicas, opts.ReplicasPerShard)
	default:
		log.Printf("routing (%s mode) on %s over %d in-process replicas", opts.Mode, rs.Addr(), opts.Replicas)
	}
	if opts.Admission != "" && opts.Admission != "none" {
		log.Printf("admission policy %s (rate %g, burst %d)", opts.Admission, opts.AdmissionRate, opts.AdmissionBurst)
	}
	if opts.AutoscaleMax > 0 {
		log.Printf("autoscaler enabled: %d..%d replicas", opts.AutoscaleMin, opts.AutoscaleMax)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	s := <-sig
	log.Printf("received %v, shutting down", s)
}
