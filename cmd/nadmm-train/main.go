// Command nadmm-train trains a multiclass linear classifier with any of
// the reproduced solvers on a preset synthetic dataset or LIBSVM files.
//
// Examples:
//
//	nadmm-train -preset mnist -scale 0.5 -solver newton-admm -ranks 4
//	nadmm-train -train data/a9a -test data/a9a.t -solver giant -epochs 50
//	nadmm-train -preset higgs -solver sync-sgd -step 1 -batch 128
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"os"

	"newtonadmm"
)

// printTrace writes the per-epoch convergence table.
func printTrace(trace []newtonadmm.TracePoint) {
	fmt.Println("epoch      time(s)      objective    test-acc")
	for _, p := range trace {
		acc := "      -"
		if !math.IsNaN(p.TestAccuracy) {
			acc = fmt.Sprintf("%7.4f", p.TestAccuracy)
		}
		fmt.Printf("%5d  %11.4f  %13.6g  %s\n", p.Epoch, p.Seconds, p.Objective, acc)
	}
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("nadmm-train: ")

	var (
		preset   = flag.String("preset", "", "synthetic preset: higgs, mnist, cifar, e18")
		scale    = flag.Float64("scale", 1.0, "preset size multiplier")
		train    = flag.String("train", "", "LIBSVM training file (alternative to -preset)")
		test     = flag.String("test", "", "LIBSVM test file")
		solver   = flag.String("solver", "newton-admm", "newton-admm, giant, inexact-dane, aide, disco, sync-sgd, newton")
		ranks    = flag.Int("ranks", 4, "simulated cluster size")
		epochs   = flag.Int("epochs", 0, "iteration budget (0 = solver default)")
		lambda   = flag.Float64("lambda", 1e-5, "L2 regularization strength")
		network  = flag.String("network", "infiniband", "interconnect model: infiniband, 10g, 1g, wan, none")
		useTCP   = flag.Bool("tcp", false, "run the cluster over real loopback TCP")
		cgIters  = flag.Int("cg", 10, "CG iterations for Newton-type solvers")
		cgTol    = flag.Float64("cgtol", 1e-4, "CG relative tolerance")
		penalty  = flag.String("penalty", "spectral", "ADMM penalty policy: spectral, residual-balancing, fixed")
		batch    = flag.Int("batch", 128, "mini-batch size (sgd, svrg)")
		step     = flag.Float64("step", 1, "step size (sgd, svrg)")
		momentum = flag.Float64("momentum", 0, "heavy-ball momentum for sync-sgd")
		tau      = flag.Float64("tau", 1, "AIDE catalyst weight")
		seed     = flag.Int64("seed", 0, "random seed for stochastic solvers")
		save     = flag.String("save", "", "write the trained model (gob) to this path")
		quiet    = flag.Bool("quiet", false, "suppress the per-epoch trace")

		ckptDir     = flag.String("checkpoint-dir", "", "write crash-safe checkpoints to this directory (newton-admm, giant)")
		ckptEvery   = flag.Int("checkpoint-every", 1, "snapshot period in epochs when -checkpoint-dir is set")
		resume      = flag.Bool("resume", false, "resume from the latest good checkpoint in -checkpoint-dir")
		maxRestarts = flag.Int("max-restarts", 0, "automatic restarts from the latest checkpoint on comm failure")
		collTimeout = flag.Duration("collective-timeout", 0, "deadline for every blocking collective wait (0 = none)")
	)
	flag.Parse()

	var (
		ds  *newtonadmm.Dataset
		err error
	)
	switch {
	case *preset != "":
		ds, err = newtonadmm.PresetDataset(*preset, *scale)
	case *train != "":
		ds, err = newtonadmm.LoadLIBSVM(*train, *test)
	default:
		fmt.Fprintln(os.Stderr, "need -preset or -train; see -h")
		os.Exit(2)
	}
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset %s: %d train / %d test, %d features, %d classes\n",
		ds.Name(), ds.TrainSize(), ds.TestSize(), ds.Features(), ds.Classes())

	model, err := newtonadmm.Train(ds, newtonadmm.Options{
		Solver: *solver, Ranks: *ranks, Epochs: *epochs, Lambda: *lambda,
		Network: *network, UseTCP: *useTCP,
		CGIters: *cgIters, CGTol: *cgTol, PenaltyPolicy: *penalty,
		BatchSize: *batch, StepSize: *step, Momentum: *momentum, Tau: *tau, Seed: *seed,
		EvalTestAccuracy: true,
		CheckpointDir:    *ckptDir, CheckpointEvery: *ckptEvery, Resume: *resume,
		MaxRestarts: *maxRestarts, CollectiveTimeout: *collTimeout,
	})
	if err != nil {
		// Flush whatever converged before the failure instead of discarding
		// it; the exit code still reports the run as failed.
		if model != nil && len(model.Trace) > 0 && !*quiet {
			printTrace(model.Trace)
		}
		if model != nil && model.FailedEpoch > 0 {
			fmt.Fprintf(os.Stderr, "nadmm-train: training failed at iteration %d\n", model.FailedEpoch)
		}
		log.Print(err)
		os.Exit(1)
	}

	if !*quiet {
		printTrace(model.Trace)
	}
	fmt.Printf("solver=%s ranks=%d total=%v avg-epoch=%v\n",
		model.Solver, *ranks, model.TotalTime, model.AvgEpochTime)
	if n := len(model.Trace); n > 0 {
		fmt.Printf("final objective: %.17g\n", model.Trace[n-1].Objective)
	}
	if !math.IsNaN(model.TestAccuracy) {
		fmt.Printf("final test accuracy: %.4f\n", model.TestAccuracy)
	}
	if *save != "" {
		if err := model.Save(*save); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("model written to %s\n", *save)
	}
}
