// Command nadmm-datagen writes synthetic datasets (the paper's Table 1
// analogues or custom planted-softmax problems) as LIBSVM files, so they
// can be fed back through nadmm-train -train or to other tools.
//
// Examples:
//
//	nadmm-datagen -preset mnist -scale 0.5 -out mnist
//	nadmm-datagen -samples 10000 -features 100 -classes 5 -sparsity 0.05 -out synth
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"newtonadmm/internal/datasets"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("nadmm-datagen: ")

	var (
		preset     = flag.String("preset", "", "synthetic preset: higgs, mnist, cifar, e18")
		scale      = flag.Float64("scale", 1.0, "preset size multiplier")
		out        = flag.String("out", "dataset", "output prefix: writes <out>.train and <out>.test")
		samples    = flag.Int("samples", 1000, "training samples (custom mode)")
		testSize   = flag.Int("testsize", 200, "test samples (custom mode)")
		features   = flag.Int("features", 50, "feature dimension (custom mode)")
		classes    = flag.Int("classes", 3, "class count (custom mode)")
		sparsity   = flag.Float64("sparsity", 0, "feature density in (0,1); 0 = dense (custom mode)")
		decay      = flag.Float64("decay", 0.5, "conditioning decay exponent (custom mode)")
		noise      = flag.Float64("noise", 1, "label temperature (custom mode)")
		separation = flag.Float64("separation", 3, "planted signal strength (custom mode)")
		seed       = flag.Int64("seed", 1, "generator seed")
	)
	flag.Parse()

	cfg := datasets.Config{
		Name: "custom", Samples: *samples, TestSamples: *testSize,
		Features: *features, Classes: *classes, Seed: *seed,
		Sparsity: *sparsity, Decay: *decay, Noise: *noise, Separation: *separation,
	}
	if *preset != "" {
		p, ok := datasets.PresetByName(*preset, *scale)
		if !ok {
			log.Fatalf("unknown preset %q (want higgs, mnist, cifar, e18)", *preset)
		}
		cfg = p
		if *seed != 1 {
			cfg.Seed = *seed
		}
	}

	ds, err := datasets.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}

	write := func(path string, x interface {
		Rows() int
		Cols() int
	}, write func(f *os.File) error) {
		f, err := os.Create(path)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := write(f); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s (%d rows, %d features)\n", path, x.Rows(), x.Cols())
	}

	write(*out+".train", ds.Xtrain, func(f *os.File) error {
		return datasets.WriteLIBSVM(f, ds.Xtrain, ds.Ytrain)
	})
	if ds.Xtest != nil {
		write(*out+".test", ds.Xtest, func(f *os.File) error {
			return datasets.WriteLIBSVM(f, ds.Xtest, ds.Ytest)
		})
	}
}
