// Command nadmm-bench regenerates the paper's evaluation artifacts: every
// table and figure (plus the ablations) as text tables and series. The
// `serve` subcommand instead load-tests the online inference subsystem
// (see serve.go), and the `sim` subcommand replays the deterministic
// fleet simulator's named scenarios (see sim.go).
//
// Examples:
//
//	nadmm-bench -list
//	nadmm-bench -run fig2 -scale 0.5
//	nadmm-bench -all -quick
//	nadmm-bench -run fig1 -network 1g
//	nadmm-bench serve -preset mnist -mode closed -concurrency 64 -compare
//	nadmm-bench serve -model model.gob -addr http://localhost:8080 -mode open -rate 5000
//	nadmm-bench sim -list
//	nadmm-bench sim -scenario zone-outage
//	nadmm-bench sim -all -seed 7
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"newtonadmm"
	"newtonadmm/internal/harness"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("nadmm-bench: ")

	if len(os.Args) > 1 && os.Args[1] == "serve" {
		runServeBench(os.Args[2:])
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "sim" {
		runSimBench(os.Args[2:])
		return
	}

	var (
		list    = flag.Bool("list", false, "list the available experiments")
		run     = flag.String("run", "", "experiment id to run (see -list)")
		all     = flag.Bool("all", false, "run every experiment")
		scale   = flag.Float64("scale", 1.0, "dataset size multiplier")
		epochs  = flag.Int("epochs", 0, "override epoch budgets (0 = experiment default)")
		quick   = flag.Bool("quick", false, "smoke-test sizes and budgets")
		network = flag.String("network", "infiniband", "interconnect model: infiniband, 10g, 1g, wan, none")
	)
	flag.Parse()

	if *list {
		for _, e := range harness.Experiments() {
			fmt.Printf("%-18s %s\n", e.ID, e.Title)
			fmt.Printf("%-18s paper: %s\n\n", "", e.Paper)
		}
		return
	}

	net, err := newtonadmm.NetworkByName(*network)
	if err != nil {
		log.Fatal(err)
	}
	cfg := harness.RunConfig{Scale: *scale, Epochs: *epochs, Quick: *quick, Network: net}

	var targets []harness.Experiment
	switch {
	case *all:
		targets = harness.Experiments()
	case *run != "":
		e, ok := harness.ByID(*run)
		if !ok {
			log.Fatalf("unknown experiment %q; try -list", *run)
		}
		targets = []harness.Experiment{e}
	default:
		fmt.Fprintln(os.Stderr, "need -run <id>, -all, or -list; see -h")
		os.Exit(2)
	}

	for _, e := range targets {
		fmt.Printf("### %s — %s\n", e.ID, e.Title)
		fmt.Printf("### paper: %s\n\n", e.Paper)
		start := time.Now()
		if err := e.Run(cfg, os.Stdout); err != nil {
			log.Fatalf("%s: %v", e.ID, err)
		}
		fmt.Printf("### %s completed in %v\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
}
