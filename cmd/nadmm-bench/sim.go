package main

// The `sim` subcommand: run the deterministic fleet simulator's named
// scenarios (internal/sim) and print their reports. Same scenario +
// same seed = byte-identical output, so a report diff IS a behavior
// diff in the router/batcher/control-plane code under simulation — the
// CI sim-regression job uploads these reports as artifacts.

import (
	"flag"
	"fmt"
	"log"
	"time"

	"newtonadmm/internal/sim"
)

func runSimBench(args []string) {
	fs := flag.NewFlagSet("sim", flag.ExitOnError)
	var (
		list     = fs.Bool("list", false, "list the named scenarios")
		scenario = fs.String("scenario", "", "run one named scenario (see -list)")
		all      = fs.Bool("all", false, "run every named scenario")
		seed     = fs.Int64("seed", 0, "override the scenario seed (0 keeps the scenario's own)")
	)
	fs.Parse(args)

	if *list {
		for _, sc := range sim.Scenarios() {
			fmt.Printf("%-20s mode=%-7s duration=%-6v load streams=%d faults=%d\n",
				sc.Name, modeName(string(sc.Mode)), sc.Duration, len(sc.Load), len(sc.Faults))
		}
		return
	}

	var scenarios []sim.Scenario
	switch {
	case *all:
		scenarios = sim.Scenarios()
	case *scenario != "":
		sc, ok := sim.ByName(*scenario)
		if !ok {
			log.Fatalf("no scenario %q (see sim -list)", *scenario)
		}
		scenarios = []sim.Scenario{sc}
	default:
		log.Fatal("sim needs -scenario <name>, -all, or -list")
	}

	for i, sc := range scenarios {
		if *seed > 0 {
			sc.Seed = *seed
		}
		start := time.Now()
		res, err := sim.Run(sc)
		if err != nil {
			log.Fatalf("scenario %s: %v", sc.Name, err)
		}
		if i > 0 {
			fmt.Println()
		}
		fmt.Print(res.Report())
		// Wall time goes to stderr: stdout stays the byte-stable report.
		log.Printf("scenario %s wall %v", sc.Name, time.Since(start).Round(time.Millisecond))
	}
}

func modeName(m string) string {
	if m == "" {
		return "replica"
	}
	return m
}
