package main

// The `serve` subcommand: a deterministic closed/open-loop load
// generator for the online inference subsystem. It either spins up the
// full serving stack in-process (train-or-load a model, build the
// micro-batching server, drive its batcher directly — the configuration
// used for the numbers in PERF.md) or drives a live nadmm-serve endpoint
// over HTTP with -addr.
//
// -compare runs the same load twice — once with batching disabled
// (max-batch 1) and once with the configured batch — and reports the
// micro-batching speedup.

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net/http"
	"runtime"
	"time"

	"newtonadmm"
	"newtonadmm/internal/serve"
)

func runServeBench(args []string) {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	var (
		model   = fs.String("model", "", "serve this checkpoint (gob); overrides -preset")
		preset  = fs.String("preset", "mnist", "train a fresh model on this preset: higgs, mnist, cifar, e18")
		scale   = fs.Float64("scale", 0.25, "preset size multiplier for the training run")
		epochs  = fs.Int("epochs", 5, "training epochs for the fresh model")
		addr    = fs.String("addr", "", "drive a live server at this base URL (e.g. http://localhost:8080) instead of in-process")
		mode    = fs.String("mode", "closed", "load mode: closed (fixed concurrency) or open (fixed arrival rate)")
		conc    = fs.Int("concurrency", 64, "closed-loop workers / open-loop outstanding cap")
		rate    = fs.Float64("rate", 0, "open-loop arrival rate, requests/second")
		dur     = fs.Duration("duration", 5*time.Second, "measured window")
		warmup  = fs.Duration("warmup", 0, "warmup before measuring (0 = duration/10)")
		maxB    = fs.Int("max-batch", 64, "micro-batch size cap (in-process)")
		linger  = fs.Duration("linger", 200*time.Microsecond, "micro-batch flush window (in-process)")
		queue   = fs.Int("queue", 1024, "admission queue depth (in-process)")
		nRows   = fs.Int("rows", 256, "distinct request rows generated from the model shape")
		seed    = fs.Int64("seed", 1, "request-row generator seed")
		sample  = fs.Int("sample", 1, "record latency for 1 in N requests (closed loop; all requests still count)")
		compare = fs.Bool("compare", false, "also run one-shot and batch-1 baselines and report the speedup")
	)
	fs.Parse(args)

	cfg := serve.LoadConfig{
		Mode: *mode, Concurrency: *conc, Rate: *rate,
		Duration: *dur, Warmup: *warmup, SampleEvery: *sample,
	}

	if *addr != "" {
		// Remote mode: the server's shape is whatever is running there;
		// probe /healthz for the feature count.
		target := &serve.HTTPTarget{Base: *addr}
		m, err := fetchRemoteMeta(*addr)
		if err != nil {
			log.Fatalf("probing %s: %v", *addr, err)
		}
		fmt.Printf("### serve bench — remote %s: model v%d (%d classes, %d features)\n",
			*addr, m.Version, m.Classes, m.Features)
		rows := benchRows(*nRows, m.Features, *seed)
		res, err := serve.RunLoad(target, rows, cfg)
		if err != nil {
			log.Fatal(err)
		}
		printLoadResult("http", res)
		return
	}

	m := benchModel(*model, *preset, *scale, *epochs)
	fmt.Printf("### serve bench — model: %d classes, %d features (solver %s)\n",
		m.Classes, m.Features, m.Solver)
	fmt.Printf("### mode=%s concurrency=%d duration=%v max-batch=%d linger=%v queue=%d\n\n",
		*mode, *conc, *dur, *maxB, *linger, *queue)
	rows := benchRows(*nRows, m.Features, *seed)

	run := func(maxBatch int, linger time.Duration) serve.LoadResult {
		srv, err := newtonadmm.Serve(m, newtonadmm.ServeOptions{
			MaxBatch: maxBatch, Linger: linger, QueueDepth: *queue, Workers: 0,
		})
		if err != nil {
			log.Fatal(err)
		}
		defer srv.Close()
		res, err := serve.RunLoad(srv.Batcher(), rows, cfg)
		if err != nil {
			log.Fatal(err)
		}
		return res
	}

	if *compare {
		// The batched run goes first: the one-shot baseline allocates
		// per request and leaves the process with a bloated heap and GC
		// debt that would unfairly depress any phase after it. A forced
		// GC between phases keeps them independent.
		batched := run(*maxB, *linger)
		runtime.GC()
		// Baseline 1: the same zero-alloc serving stack pinned to
		// batch-size 1 (no coalescing, no linger).
		base := run(1, -1)
		runtime.GC()
		// Baseline 2: batch-size-1 serving as it existed before the
		// batching subsystem — a one-shot Model.Predict per request
		// (fresh device, scorer, and staging every call).
		oneShot, err := serve.RunLoad(oneShotTarget{m: m}, rows, cfg)
		if err != nil {
			log.Fatal(err)
		}
		printLoadResult("one-shot", oneShot)
		printLoadResult("batch-1 ", base)
		printLoadResult(fmt.Sprintf("batch-%-2d", *maxB), batched)
		if oneShot.Throughput > 0 {
			fmt.Printf("\nbatched vs one-shot per-request serving: %.2fx (%.0f -> %.0f req/s)\n",
				batched.Throughput/oneShot.Throughput, oneShot.Throughput, batched.Throughput)
		}
		if base.Throughput > 0 {
			fmt.Printf("batched vs zero-alloc batch-1 pipeline:  %.2fx (%.0f -> %.0f req/s)\n",
				batched.Throughput/base.Throughput, base.Throughput, batched.Throughput)
		}
		return
	}
	printLoadResult("batched ", run(*maxB, *linger))
}

// oneShotTarget serves each request the way the public API did before
// the batching subsystem existed: one Model.Predict call per request,
// paying device construction, scorer setup, and staging allocation
// every time.
type oneShotTarget struct{ m *newtonadmm.Model }

func (t oneShotTarget) Predict(row []float64) (int, error) {
	out, err := t.m.Predict([][]float64{row})
	if err != nil {
		return 0, err
	}
	return out[0], nil
}

// benchModel loads or trains the model to serve.
func benchModel(path, preset string, scale float64, epochs int) *newtonadmm.Model {
	if path != "" {
		m, err := newtonadmm.LoadModel(path)
		if err != nil {
			log.Fatalf("loading %s: %v", path, err)
		}
		return m
	}
	ds, err := newtonadmm.PresetDataset(preset, scale)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("training %s (scale %g, %d epochs) ...", ds.Name(), scale, epochs)
	m, err := newtonadmm.Train(ds, newtonadmm.Options{
		Epochs: epochs, Network: "none", EvalTestAccuracy: false,
	})
	if err != nil {
		log.Fatal(err)
	}
	return m
}

// benchRows generates the deterministic request-row set.
func benchRows(n, features int, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	rows := make([][]float64, n)
	for i := range rows {
		rows[i] = make([]float64, features)
		for j := range rows[i] {
			rows[i][j] = rng.NormFloat64()
		}
	}
	return rows
}

func printLoadResult(label string, r serve.LoadResult) {
	l := r.Latency
	fmt.Printf("%s  %10.0f req/s   ok=%d rejected=%d errors=%d shed=%d\n",
		label, r.Throughput, r.Done, r.Rejected, r.Errors, r.Shed)
	fmt.Printf("%s  latency mean=%v p50=%v p95=%v p99=%v max=%v\n",
		label, l.Mean, l.P50, l.P95, l.P99, l.Max)
}

// fetchRemoteMeta reads /healthz of a live server.
func fetchRemoteMeta(base string) (serve.ModelMeta, error) {
	var health struct {
		Model serve.ModelMeta `json:"model"`
	}
	if err := getJSON(base+"/healthz", &health); err != nil {
		return serve.ModelMeta{}, err
	}
	if health.Model.Features <= 0 {
		return serve.ModelMeta{}, fmt.Errorf("server reported no model")
	}
	return health.Model, nil
}

func getJSON(url string, v any) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	return json.NewDecoder(resp.Body).Decode(v)
}
