package main

// The `serve` subcommand: a deterministic closed/open-loop load
// generator for the online inference subsystem. It either spins up the
// full serving stack in-process (train-or-load a model, build the
// micro-batching server, drive its batcher directly — the configuration
// used for the numbers in PERF.md) or drives a live nadmm-serve endpoint
// over HTTP with -addr.
//
// -compare runs the same load across the serving configurations — the
// pre-subsystem one-shot path, the zero-alloc batch-1 pipeline, the
// batched server, the scatter-gather router in both placement modes
// (replica-balanced and class-sharded) over in-process replicas, and
// the same two placements over real replica servers crossing each
// remote data plane (router-*-http: JSON, router-*-tcp: binary frames)
// with a metered bytes-on-wire figure per row — and reports every row
// plus the router's per-replica breakdown from a single run. -proba
// switches all rows to the probability path.

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net/http"
	"runtime"
	"time"

	"newtonadmm"
	"newtonadmm/internal/control"
	"newtonadmm/internal/obs"
	"newtonadmm/internal/router"
	"newtonadmm/internal/serve"
)

func runServeBench(args []string) {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	var (
		model    = fs.String("model", "", "serve this checkpoint (gob); overrides -preset")
		preset   = fs.String("preset", "mnist", "train a fresh model on this preset: higgs, mnist, cifar, e18")
		scale    = fs.Float64("scale", 0.25, "preset size multiplier for the training run")
		epochs   = fs.Int("epochs", 5, "training epochs for the fresh model")
		addr     = fs.String("addr", "", "drive a live server at this base URL (e.g. http://localhost:8080) instead of in-process")
		mode     = fs.String("mode", "closed", "load mode: closed (fixed concurrency) or open (fixed arrival rate)")
		conc     = fs.Int("concurrency", 64, "closed-loop workers / open-loop outstanding cap")
		rate     = fs.Float64("rate", 0, "open-loop arrival rate, requests/second")
		dur      = fs.Duration("duration", 5*time.Second, "measured window")
		warmup   = fs.Duration("warmup", 0, "warmup before measuring (0 = duration/10)")
		maxB     = fs.Int("max-batch", 64, "micro-batch size cap (in-process)")
		linger   = fs.Duration("linger", 200*time.Microsecond, "micro-batch flush window (in-process)")
		queue    = fs.Int("queue", 1024, "admission queue depth (in-process)")
		nRows    = fs.Int("rows", 256, "distinct request rows generated from the model shape")
		seed     = fs.Int64("seed", 1, "request-row generator seed")
		sample   = fs.Int("sample", 1, "record latency for 1 in N requests (closed loop; all requests still count)")
		proba    = fs.Bool("proba", false, "drive the probability path (/v1/proba semantics) instead of plain prediction")
		replicas = fs.Int("replicas", 2, "router replica count for the -compare router rows (class mode: shard count S)")
		perShard = fs.Int("replicas-per-shard", 1, "siblings per class shard for the in-process router-class row (R; >1 measures the replicated grid's failover-capable path)")
		compare  = fs.Bool("compare", false, "also run one-shot, batch-1, router (both modes, plus remote JSON and binary wire rows), and a mixed-priority row, and report every row")
		trace    = fs.Bool("trace", false, "print the per-stage breakdown of the slowest sampled request after each in-process row")

		admission = fs.String("admission", "none", "admission policy on the in-process rows: none, token-bucket, or cost")
		admRate   = fs.Float64("admission-rate", 0, "admission refill rate (requests/s or cost units/s)")
		admBurst  = fs.Int("admission-burst", 0, "admission burst capacity (0 = max(rate,1))")
		priority  = fs.String("priority", "", "submit every request under this service class: interactive (default), batch, or background")
	)
	fs.Parse(args)

	pri, err := control.ParsePriority(*priority)
	if err != nil {
		log.Fatal(err)
	}

	cfg := serve.LoadConfig{
		Mode: *mode, Concurrency: *conc, Rate: *rate,
		Duration: *dur, Warmup: *warmup, SampleEvery: *sample,
		Proba: *proba,
	}

	if *addr != "" {
		// Remote mode: the server's shape is whatever is running there;
		// probe /healthz for the feature count.
		target := &serve.HTTPTarget{Base: *addr, Priority: *priority}
		m, err := fetchRemoteMeta(*addr)
		if err != nil {
			log.Fatalf("probing %s: %v", *addr, err)
		}
		fmt.Printf("### serve bench — remote %s: model v%d (%d classes, %d features)\n",
			*addr, m.Version, m.Classes, m.Features)
		cfg.Classes = m.Classes
		rows := benchRows(*nRows, m.Features, *seed)
		res, err := serve.RunLoad(target, rows, cfg)
		if err != nil {
			log.Fatal(err)
		}
		printLoadResult("http", res)
		return
	}

	m := benchModel(*model, *preset, *scale, *epochs)
	cfg.Classes = m.Classes
	fmt.Printf("### serve bench — model: %d classes, %d features (solver %s)\n",
		m.Classes, m.Features, m.Solver)
	fmt.Printf("### mode=%s concurrency=%d duration=%v max-batch=%d linger=%v queue=%d proba=%v\n\n",
		*mode, *conc, *dur, *maxB, *linger, *queue, *proba)
	rows := benchRows(*nRows, m.Features, *seed)

	run := func(maxBatch int, linger time.Duration) (serve.LoadResult, obs.TraceView, bool) {
		srv, err := newtonadmm.Serve(m, newtonadmm.ServeOptions{
			MaxBatch: maxBatch, Linger: linger, QueueDepth: *queue, Workers: 0,
			Admission: *admission, AdmissionRate: *admRate, AdmissionBurst: *admBurst,
		})
		if err != nil {
			log.Fatal(err)
		}
		defer srv.Close()
		res, err := serve.RunLoad(&serve.PriorityTarget{B: srv.Batcher(), Priority: pri}, rows, cfg)
		if err != nil {
			log.Fatal(err)
		}
		slow, ok := srv.Batcher().Recorder().TakeSlowest()
		return res, slow, ok
	}

	// runMixed measures priority isolation: an interactive closed loop
	// (the reported latency row) while a background flood hammers the
	// same batcher, optionally behind an admission policy. Returns the
	// interactive and background results.
	runMixed := func() (serve.LoadResult, serve.LoadResult) {
		srv, err := newtonadmm.Serve(m, newtonadmm.ServeOptions{
			MaxBatch: *maxB, Linger: *linger, QueueDepth: *queue, Workers: 0,
			Admission: *admission, AdmissionRate: *admRate, AdmissionBurst: *admBurst,
		})
		if err != nil {
			log.Fatal(err)
		}
		defer srv.Close()
		bgCfg := cfg
		bgCfg.Mode = "closed"
		bgDone := make(chan serve.LoadResult, 1)
		go func() {
			res, err := serve.RunLoad(&serve.PriorityTarget{B: srv.Batcher(), Priority: control.Background}, rows, bgCfg)
			if err != nil {
				log.Fatal(err)
			}
			bgDone <- res
		}()
		it, err := serve.RunLoad(&serve.PriorityTarget{B: srv.Batcher(), Priority: control.Interactive}, rows, cfg)
		if err != nil {
			log.Fatal(err)
		}
		return it, <-bgDone
	}

	// runRouter drives the scatter-gather tier in the given placement
	// mode and returns the per-replica breakdown with the result.
	runRouter := func(placement string) (serve.LoadResult, router.Stats, obs.TraceView, bool) {
		ro := newtonadmm.RouterOptions{
			Replicas: *replicas, Mode: placement,
			MaxBatch: *maxB, Linger: *linger, QueueDepth: *queue,
		}
		if placement == "class" {
			// R x S grid row: the replicated, failover-capable layout.
			ro.ReplicasPerShard = *perShard
		}
		rs, err := newtonadmm.ServeSharded(m, ro)
		if err != nil {
			log.Fatal(err)
		}
		defer rs.Close()
		res, err := serve.RunLoad(rs.Target(), rows, cfg)
		if err != nil {
			log.Fatal(err)
		}
		slow, ok := rs.Router().Recorder().TakeSlowest()
		return res, rs.Router().Stats(), slow, ok
	}

	// runRouterRemote drives the tier over real replica servers and a
	// real wire — plane "json" joins their HTTP surface, "binary" their
	// frame listener — and meters bytes on the wire per request, so the
	// JSON-vs-binary encode/decode comparison is measured, not asserted.
	runRouterRemote := func(placement, plane string) (serve.LoadResult, router.Stats, float64) {
		var servers []*newtonadmm.ModelServer
		var joins []string
		for i := 0; i < *replicas; i++ {
			so := newtonadmm.ServeOptions{
				Addr: "127.0.0.1:0", WireAddr: "127.0.0.1:0",
				MaxBatch: *maxB, Linger: *linger, QueueDepth: *queue,
			}
			if placement == "class" {
				so.ShardIndex, so.ShardCount = i, *replicas
			}
			ms, err := newtonadmm.Serve(m, so)
			if err != nil {
				log.Fatal(err)
			}
			servers = append(servers, ms)
			if plane == "binary" {
				joins = append(joins, "tcp://"+ms.WireAddr())
			} else {
				joins = append(joins, "http://"+ms.Addr())
			}
		}
		defer func() {
			for _, ms := range servers {
				ms.Close()
			}
		}()
		rs, err := newtonadmm.ServeSharded(nil, newtonadmm.RouterOptions{Join: joins, Mode: placement})
		if err != nil {
			log.Fatal(err)
		}
		defer rs.Close()
		res, err := serve.RunLoad(rs.Target(), rows, cfg)
		if err != nil {
			log.Fatal(err)
		}
		st := rs.Router().Stats()
		var sent, recv uint64
		for _, rep := range rs.Router().Pool().Replicas() {
			if ws, ok := rep.Backend().(router.WireStats); ok {
				s, r := ws.BytesOnWire()
				sent += s
				recv += r
			}
		}
		bytesPerReq := 0.0
		if st.Requests > 0 {
			bytesPerReq = float64(sent+recv) / float64(st.Requests)
		}
		return res, st, bytesPerReq
	}

	if *compare {
		// The batched run goes first: the one-shot baseline allocates
		// per request and leaves the process with a bloated heap and GC
		// debt that would unfairly depress any phase after it. A forced
		// GC between phases keeps them independent.
		batched, batchedSlow, batchedOK := run(*maxB, *linger)
		runtime.GC()
		// Baseline 1: the same zero-alloc serving stack pinned to
		// batch-size 1 (no coalescing, no linger).
		base, baseSlow, baseOK := run(1, -1)
		runtime.GC()
		// Priority isolation: the same batched stack serving an
		// interactive closed loop while a background flood of equal
		// concurrency competes through the 16/4/1 weighted dequeue.
		mixedIt, mixedBg := runMixed()
		runtime.GC()
		// The serving fleet: replica-balanced routing over N full
		// replicas, then class-sharded partial-logit scatter-gather
		// (skipped when the model has fewer explicit classes than
		// replicas).
		routed, routedStats, routedSlow, routedOK := runRouter("replica")
		runtime.GC()
		var sharded serve.LoadResult
		var shardedStats router.Stats
		var shardedSlow obs.TraceView
		var shardedOK bool
		haveSharded := m.Classes-1 >= *replicas
		if haveSharded {
			sharded, shardedStats, shardedSlow, shardedOK = runRouter("class")
			runtime.GC()
		}
		// The remote data planes: the same placements over real replica
		// servers, once across JSON/HTTP and once across the binary
		// frame plane, with bytes-on-wire metered.
		routedHTTP, routedHTTPStats, routedHTTPBytes := runRouterRemote("replica", "json")
		runtime.GC()
		routedTCP, routedTCPStats, routedTCPBytes := runRouterRemote("replica", "binary")
		runtime.GC()
		var shardedHTTP, shardedTCP serve.LoadResult
		var shardedHTTPStats, shardedTCPStats router.Stats
		var shardedHTTPBytes, shardedTCPBytes float64
		if haveSharded {
			shardedHTTP, shardedHTTPStats, shardedHTTPBytes = runRouterRemote("class", "json")
			runtime.GC()
			shardedTCP, shardedTCPStats, shardedTCPBytes = runRouterRemote("class", "binary")
			runtime.GC()
		}
		// Baseline 2: batch-size-1 serving as it existed before the
		// batching subsystem — a one-shot Model.Predict per request
		// (fresh device, scorer, and staging every call).
		var oneShot serve.LoadResult
		var err error
		if *proba {
			oneShot, err = serve.RunLoad(oneShotProbaTarget{m: m}, rows, cfg)
		} else {
			oneShot, err = serve.RunLoad(oneShotTarget{m: m}, rows, cfg)
		}
		if err != nil {
			log.Fatal(err)
		}
		printLoadResult("one-shot        ", oneShot)
		printLoadResult("batch-1         ", base)
		if *trace {
			printSlowTrace(baseSlow, baseOK)
		}
		printLoadResult(fmt.Sprintf("batch-%-10d", *maxB), batched)
		if *trace {
			printSlowTrace(batchedSlow, batchedOK)
		}
		printLoadResult("mixed-pri int   ", mixedIt)
		printLoadResult("mixed-pri bg    ", mixedBg)
		printLoadResult(fmt.Sprintf("router-replica%-2d", *replicas), routed)
		printReplicaBreakdown(routedStats)
		if *trace {
			printSlowTrace(routedSlow, routedOK)
		}
		if haveSharded {
			printLoadResult(fmt.Sprintf("router-class%-4d", *replicas), sharded)
			printReplicaBreakdown(shardedStats)
			if *trace {
				printSlowTrace(shardedSlow, shardedOK)
			}
		} else {
			fmt.Printf("router-class     skipped: %d explicit classes < %d replicas\n", m.Classes-1, *replicas)
		}
		printLoadResult(fmt.Sprintf("router-replica-http%d", *replicas), routedHTTP)
		printReplicaBreakdown(routedHTTPStats)
		printWireBytes(routedHTTPBytes, "JSON bodies, headers excluded")
		printLoadResult(fmt.Sprintf("router-replica-tcp%d ", *replicas), routedTCP)
		printReplicaBreakdown(routedTCPStats)
		printWireBytes(routedTCPBytes, "binary frames, exact")
		if haveSharded {
			printLoadResult(fmt.Sprintf("router-class-http%d  ", *replicas), shardedHTTP)
			printReplicaBreakdown(shardedHTTPStats)
			printWireBytes(shardedHTTPBytes, "JSON bodies, headers excluded")
			printLoadResult(fmt.Sprintf("router-class-tcp%d   ", *replicas), shardedTCP)
			printReplicaBreakdown(shardedTCPStats)
			printWireBytes(shardedTCPBytes, "binary frames, exact")
		}
		if oneShot.Throughput > 0 {
			fmt.Printf("\nbatched vs one-shot per-request serving: %.2fx (%.0f -> %.0f req/s)\n",
				batched.Throughput/oneShot.Throughput, oneShot.Throughput, batched.Throughput)
		}
		if base.Throughput > 0 {
			fmt.Printf("batched vs zero-alloc batch-1 pipeline:  %.2fx (%.0f -> %.0f req/s)\n",
				batched.Throughput/base.Throughput, base.Throughput, batched.Throughput)
		}
		if batched.Latency.P99 > 0 {
			fmt.Printf("interactive p99 under background flood:  %v (vs %v unloaded, bg absorbed %d rejections)\n",
				mixedIt.Latency.P99, batched.Latency.P99, mixedBg.Rejected)
		}
		if batched.Throughput > 0 {
			fmt.Printf("router (replica x%d) vs single batched:   %.2fx (%.0f -> %.0f req/s)\n",
				*replicas, routed.Throughput/batched.Throughput, batched.Throughput, routed.Throughput)
			if haveSharded {
				fmt.Printf("router (class x%d) vs single batched:     %.2fx (%.0f -> %.0f req/s)\n",
					*replicas, sharded.Throughput/batched.Throughput, batched.Throughput, sharded.Throughput)
			}
		}
		if routedHTTP.Throughput > 0 {
			fmt.Printf("binary vs JSON wire (replica x%d):        %.2fx req/s, %.2fx bytes (%.0f -> %.0f B/req)\n",
				*replicas, routedTCP.Throughput/routedHTTP.Throughput,
				routedHTTPBytes/routedTCPBytes, routedHTTPBytes, routedTCPBytes)
		}
		if haveSharded && shardedHTTP.Throughput > 0 {
			fmt.Printf("binary vs JSON wire (class x%d):          %.2fx req/s, %.2fx bytes (%.0f -> %.0f B/req)\n",
				*replicas, shardedTCP.Throughput/shardedHTTP.Throughput,
				shardedHTTPBytes/shardedTCPBytes, shardedHTTPBytes, shardedTCPBytes)
		}
		return
	}
	res, slow, ok := run(*maxB, *linger)
	printLoadResult("batched ", res)
	if *trace {
		printSlowTrace(slow, ok)
	}
}

// printSlowTrace renders the slowest sampled request's per-stage
// waterfall: one line per span with its offset into the request and
// duration, then the unattributed remainder (time outside any span).
func printSlowTrace(v obs.TraceView, ok bool) {
	if !ok {
		fmt.Printf("    slowest trace: none sampled\n")
		return
	}
	fmt.Printf("    slowest trace %016x: total=%v spans=%d\n", v.ID, v.Total, len(v.Spans))
	var attributed time.Duration
	for _, sp := range v.Spans {
		leg := ""
		if sp.Leg >= 0 {
			leg = fmt.Sprintf(" leg=%d try=%d", sp.Leg, sp.Try)
		}
		fmt.Printf("      %-8s +%-12v %v%s\n", sp.Stage, sp.Start, sp.Dur, leg)
		if sp.Leg < 0 || sp.Try == 0 {
			attributed += sp.Dur
		}
	}
	if rem := v.Total - attributed; rem > 0 {
		fmt.Printf("      %-8s %v\n", "other", rem)
	}
	if v.Dropped > 0 {
		fmt.Printf("      (%d spans dropped)\n", v.Dropped)
	}
}

// oneShotTarget serves each request the way the public API did before
// the batching subsystem existed: one Model.Predict call per request,
// paying device construction, scorer setup, and staging allocation
// every time.
type oneShotTarget struct{ m *newtonadmm.Model }

func (t oneShotTarget) Predict(row []float64) (int, error) {
	out, err := t.m.Predict([][]float64{row})
	if err != nil {
		return 0, err
	}
	return out[0], nil
}

// oneShotProbaTarget is the pre-subsystem probability path.
type oneShotProbaTarget struct{ m *newtonadmm.Model }

func (t oneShotProbaTarget) Predict(row []float64) (int, error) {
	return oneShotTarget{m: t.m}.Predict(row)
}

func (t oneShotProbaTarget) Proba(row []float64, out []float64) (int, error) {
	probs, err := t.m.PredictProba([][]float64{row})
	if err != nil {
		return 0, err
	}
	copy(out, probs[0])
	return serve.ArgmaxProba(probs[0]), nil
}

// benchModel loads or trains the model to serve.
func benchModel(path, preset string, scale float64, epochs int) *newtonadmm.Model {
	if path != "" {
		m, err := newtonadmm.LoadModel(path)
		if err != nil {
			log.Fatalf("loading %s: %v", path, err)
		}
		return m
	}
	ds, err := newtonadmm.PresetDataset(preset, scale)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("training %s (scale %g, %d epochs) ...", ds.Name(), scale, epochs)
	m, err := newtonadmm.Train(ds, newtonadmm.Options{
		Epochs: epochs, Network: "none", EvalTestAccuracy: false,
	})
	if err != nil {
		log.Fatal(err)
	}
	return m
}

// benchRows generates the deterministic request-row set.
func benchRows(n, features int, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	rows := make([][]float64, n)
	for i := range rows {
		rows[i] = make([]float64, features)
		for j := range rows[i] {
			rows[i][j] = rng.NormFloat64()
		}
	}
	return rows
}

func printLoadResult(label string, r serve.LoadResult) {
	l := r.Latency
	fmt.Printf("%s  %10.0f req/s   ok=%d rejected=%d errors=%d shed=%d\n",
		label, r.Throughput, r.Done, r.Rejected, r.Errors, r.Shed)
	if r.RejectedRateLimited > 0 || r.RejectedCost > 0 {
		fmt.Printf("%s  rejections by reason: queue_full=%d rate_limited=%d cost_rejected=%d\n",
			label, r.RejectedQueueFull, r.RejectedRateLimited, r.RejectedCost)
	}
	fmt.Printf("%s  latency mean=%v p50=%v p95=%v p99=%v max=%v\n",
		label, l.Mean, l.P50, l.P95, l.P99, l.Max)
}

// printWireBytes reports the metered per-request bytes-on-wire of a
// remote data-plane row.
func printWireBytes(bytesPerReq float64, how string) {
	fmt.Printf("    bytes on wire: %.0f B/req (%s)\n", bytesPerReq, how)
}

// printReplicaBreakdown reports the router's per-replica view of the
// run: how the load spread and what each replica's scatter leg cost.
func printReplicaBreakdown(st router.Stats) {
	for _, rs := range st.Replicas {
		fmt.Printf("    replica %d [%s]: done=%d rejected=%d errors=%d  leg p50=%v p99=%v\n",
			rs.ID, rs.State, rs.Done, rs.Rejected, rs.Errors, rs.Latency.P50, rs.Latency.P99)
	}
	if st.Failovers > 0 || st.SkewRetry > 0 {
		fmt.Printf("    failovers=%d skew-retries=%d\n", st.Failovers, st.SkewRetry)
	}
}

// fetchRemoteMeta reads /healthz of a live server.
func fetchRemoteMeta(base string) (serve.ModelMeta, error) {
	var health struct {
		Model serve.ModelMeta `json:"model"`
	}
	if err := getJSON(base+"/healthz", &health); err != nil {
		return serve.ModelMeta{}, err
	}
	if health.Model.Features <= 0 {
		return serve.ModelMeta{}, fmt.Errorf("server reported no model")
	}
	return health.Model, nil
}

func getJSON(url string, v any) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	return json.NewDecoder(resp.Body).Decode(v)
}
