package newtonadmm

// Benchmarks regenerating every table and figure of the paper's evaluation
// (one testing.B target per artifact, backed by the experiment harness in
// internal/harness) plus micro-benchmarks of the numerical kernels the
// solvers spend their time in and of the serving layer's hot path. The
// macro benches use quick-mode sizes so `go test -bench=.` finishes in
// minutes; `cmd/nadmm-bench` runs the full-scale versions recorded in
// PERF.md.

import (
	"io"
	"math/rand"
	"testing"

	"newtonadmm/internal/cg"
	"newtonadmm/internal/cluster"
	"newtonadmm/internal/datasets"
	"newtonadmm/internal/device"
	"newtonadmm/internal/harness"
	"newtonadmm/internal/linalg"
	"newtonadmm/internal/loss"
	"newtonadmm/internal/sparse"
)

func benchExperiment(b *testing.B, id string) {
	e, ok := harness.ByID(id)
	if !ok {
		b.Fatalf("experiment %q not registered", id)
	}
	cfg := harness.RunConfig{Quick: true}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := e.Run(cfg, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable1Datasets regenerates Table 1 (dataset description).
func BenchmarkTable1Datasets(b *testing.B) { benchExperiment(b, "table1") }

// BenchmarkFig1SecondOrderComparison regenerates Figure 1 (objective vs
// time for Newton-ADMM, GIANT, InexactDANE, AIDE on MNIST).
func BenchmarkFig1SecondOrderComparison(b *testing.B) { benchExperiment(b, "fig1") }

// BenchmarkFig2EpochTimeScaling regenerates Figure 2 (average epoch time,
// strong and weak scaling).
func BenchmarkFig2EpochTimeScaling(b *testing.B) { benchExperiment(b, "fig2") }

// BenchmarkFig3SpeedupScaling regenerates Figure 3 (GIANT/Newton-ADMM
// speedup ratio to theta < 0.05).
func BenchmarkFig3SpeedupScaling(b *testing.B) { benchExperiment(b, "fig3") }

// BenchmarkFig4VersusSGD regenerates Figure 4 (Newton-ADMM vs synchronous
// SGD, objective and accuracy vs time).
func BenchmarkFig4VersusSGD(b *testing.B) { benchExperiment(b, "fig4") }

// BenchmarkFig5E18WeakScaling regenerates Figure 5 (E18 with 16 workers at
// two regularization strengths).
func BenchmarkFig5E18WeakScaling(b *testing.B) { benchExperiment(b, "fig5") }

// BenchmarkAblationPenaltyPolicy compares SPS / residual balancing /
// fixed-rho penalty policies (paper §2.2 claim).
func BenchmarkAblationPenaltyPolicy(b *testing.B) { benchExperiment(b, "ablation-penalty") }

// BenchmarkAblationNetwork re-times the solvers under InfiniBand / 10GbE /
// 1GbE / WAN models (paper §3 claim).
func BenchmarkAblationNetwork(b *testing.B) { benchExperiment(b, "ablation-network") }

// BenchmarkAblationCGInexactness sweeps the CG budget of single-node
// Newton (paper §2.1 claim).
func BenchmarkAblationCGInexactness(b *testing.B) { benchExperiment(b, "ablation-inexact") }

// ---- micro-benchmarks of the kernels the solvers live in ----

func benchProblem(b *testing.B, n, p, classes int) (*loss.Softmax, []float64) {
	b.Helper()
	ds, err := datasets.Generate(datasets.Config{
		Name: "bench", Samples: n, Features: p, Classes: classes, Seed: 9,
	})
	if err != nil {
		b.Fatal(err)
	}
	dev := device.New("bench", 0)
	b.Cleanup(dev.Close)
	prob, err := loss.NewSoftmax(dev, ds.Xtrain, ds.Ytrain, classes, 1e-5)
	if err != nil {
		b.Fatal(err)
	}
	w := make([]float64, prob.Dim())
	for i := range w {
		w[i] = 0.01 * float64(i%7)
	}
	return prob, w
}

// BenchmarkSoftmaxValue measures the fused score + log-sum-exp objective
// evaluation (one MulNTReduce launch; every line-search step pays this).
func BenchmarkSoftmaxValue(b *testing.B) {
	prob, w := benchProblem(b, 2000, 784, 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		prob.Value(w)
	}
}

// BenchmarkSoftmaxGradient measures the fused objective+gradient kernel
// (the dominant cost of every epoch) on an MNIST-shaped shard.
func BenchmarkSoftmaxGradient(b *testing.B) {
	prob, w := benchProblem(b, 2000, 784, 10)
	g := make([]float64, prob.Dim())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		prob.Gradient(w, g)
	}
}

// BenchmarkHessianVector measures one Hessian-vector product (the inner
// CG cost) on an MNIST-shaped shard.
func BenchmarkHessianVector(b *testing.B) {
	prob, w := benchProblem(b, 2000, 784, 10)
	h := prob.HessianAt(w)
	v := make([]float64, prob.Dim())
	hv := make([]float64, prob.Dim())
	for i := range v {
		v[i] = 1
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Apply(v, hv)
	}
}

// BenchmarkCGNewtonDirection measures a full 10-iteration CG solve for
// the Newton direction.
func BenchmarkCGNewtonDirection(b *testing.B) {
	prob, w := benchProblem(b, 1000, 256, 10)
	g := make([]float64, prob.Dim())
	prob.Gradient(w, g)
	h := prob.HessianAt(w)
	p := make([]float64, prob.Dim())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cg.NewtonDirection(h, g, p, cg.Options{MaxIters: 10, RelTol: 1e-4})
	}
}

// BenchmarkDeviceMulNT measures the raw score-matrix kernel.
func BenchmarkDeviceMulNT(b *testing.B) {
	dev := device.New("bench", 0)
	defer dev.Close()
	n, p, m := 4000, 784, 9
	a := linalg.NewMatrix(n, p)
	for i := range a.Data {
		a.Data[i] = float64(i % 13)
	}
	w := make([]float64, m*p)
	s := make([]float64, n*m)
	b.SetBytes(int64(8 * (n*p + m*p + n*m)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dev.MulNT(a, w, m, s)
	}
}

// benchCSR builds an E18-flavoured sparse operand set: many features,
// low density.
func benchCSR(b *testing.B) (*device.Device, *sparse.CSR, []float64, []float64, []float64, int) {
	b.Helper()
	dev := device.New("bench-sparse", 0)
	b.Cleanup(dev.Close)
	rng := rand.New(rand.NewSource(11))
	n, p, m, density := 4000, 5000, 9, 0.01
	var entries []sparse.Coord
	for i := 0; i < n; i++ {
		for j := 0; j < p; j++ {
			if rng.Float64() < density {
				entries = append(entries, sparse.Coord{Row: i, Col: j, Val: rng.NormFloat64()})
			}
		}
	}
	csr, err := sparse.FromCoords(n, p, entries)
	if err != nil {
		b.Fatal(err)
	}
	w := make([]float64, m*p)
	for i := range w {
		w[i] = 0.01 * float64(i%11)
	}
	s := make([]float64, n*m)
	d := make([]float64, n*m)
	for i := range d {
		d[i] = 0.1 * float64(i%7)
	}
	return dev, csr, w, s, d, m
}

// BenchmarkSparseMulNT measures the raw CSR score-matrix kernel (the E18
// code path).
func BenchmarkSparseMulNT(b *testing.B) {
	dev, csr, w, s, _, m := benchCSR(b)
	b.SetBytes(int64(8 * (csr.NNZ() + len(w) + len(s))))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		csr.MulNT(dev, w, m, s)
	}
}

// BenchmarkSparseMulTN measures the raw CSR gradient-accumulation kernel.
func BenchmarkSparseMulTN(b *testing.B) {
	dev, csr, _, _, d, m := benchCSR(b)
	g := make([]float64, m*csr.NumCols)
	b.SetBytes(int64(8 * (csr.NNZ() + len(d) + len(g))))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		csr.MulTN(dev, d, m, g)
	}
}

// ---- serving-layer benchmarks (the online inference subsystem) ----

// benchServeModel builds an MNIST-shaped model (reusing the serve_test
// fixed-weight builder) plus a deterministic request-row set.
func benchServeModel(b *testing.B) (*Model, [][]float64) {
	b.Helper()
	m := testModel(10, 784, 31)
	rng := rand.New(rand.NewSource(32))
	rows := make([][]float64, 64)
	for i := range rows {
		rows[i] = make([]float64, m.Features)
		for j := range rows[i] {
			rows[i][j] = rng.NormFloat64()
		}
	}
	return m, rows
}

// BenchmarkServePredictorBatch64 measures one fused 64-row prediction
// launch through the persistent zero-alloc predictor.
func BenchmarkServePredictorBatch64(b *testing.B) {
	m, rows := benchServeModel(b)
	p, err := m.NewPredictor(0)
	if err != nil {
		b.Fatal(err)
	}
	defer p.Close()
	out := make([]int, len(rows))
	b.SetBytes(int64(8 * len(rows) * m.Features))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := p.Predict(rows, out); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServeBatcherRoundTrip measures one submit-to-answer trip
// through the micro-batcher (queue, coalesce, launch, reply).
func BenchmarkServeBatcherRoundTrip(b *testing.B) {
	m, rows := benchServeModel(b)
	srv, err := Serve(m, ServeOptions{MaxBatch: 64, Linger: -1})
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	bat := srv.Batcher()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bat.Predict(rows[i%len(rows)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServeOneShotPredict measures the pre-subsystem serving path
// for contrast: a fresh device, scorer, and staging on every request.
func BenchmarkServeOneShotPredict(b *testing.B) {
	m, rows := benchServeModel(b)
	single := rows[:1]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Predict(single); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRouterClassScatter measures one class-sharded scatter-gather
// round trip: scatter to 2 shard replicas, partial-logit scoring, merge.
func BenchmarkRouterClassScatter(b *testing.B) {
	m, rows := benchServeModel(b)
	rs, err := ServeSharded(m, RouterOptions{
		Replicas: 2, Mode: "class", Workers: 1, MaxBatch: 64, Linger: -1, HealthEvery: -1,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer rs.Close()
	target := rs.Target()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := target.Predict(rows[i%len(rows)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRouterReplicaRoundTrip measures one request through the
// replica-balanced router (pick, replica batcher, reply).
func BenchmarkRouterReplicaRoundTrip(b *testing.B) {
	m, rows := benchServeModel(b)
	rs, err := ServeSharded(m, RouterOptions{
		Replicas: 2, Mode: "replica", Workers: 1, MaxBatch: 64, Linger: -1, HealthEvery: -1,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer rs.Close()
	target := rs.Target()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := target.Predict(rows[i%len(rows)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAllReduce measures the collective the first-order baseline
// performs every mini-batch (in-process transport, 8 ranks).
func BenchmarkAllReduce(b *testing.B) {
	dim := 7056 // MNIST-shaped parameter vector
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := cluster.Run(cluster.Config{Ranks: 8, Network: cluster.ZeroCost, DeviceWorkers: 1},
			func(node *cluster.Node) error {
				vec := make([]float64, dim)
				for k := 0; k < 10; k++ {
					node.AllReduceSum(vec)
				}
				return nil
			})
		if err != nil {
			b.Fatal(err)
		}
	}
}
