// Serving fleet on the binary data plane: train a preset, stand up two
// class-shard replica servers each exposing both the JSON surface and
// the binary frame listener, front them with a scatter-gather router
// joined over tcp://, and drive the fleet through a request, a drain +
// undrain, and a coordinated hot swap — the in-process twin of the
// multi-process topology in this example's README (which does the same
// with two nadmm-serve processes and curl).
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"math/rand"
	"net/http"
	"os"
	"path/filepath"

	"newtonadmm"
)

func main() {
	// A small 10-class problem so the explicit class rows split 5/4
	// across two shards.
	ds, err := newtonadmm.PresetDataset("mnist", 0.05)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("training %s: %d features, %d classes ...\n", ds.Name(), ds.Features(), ds.Classes())
	model, err := newtonadmm.Train(ds, newtonadmm.Options{Epochs: 3, Network: "none", EvalTestAccuracy: false})
	if err != nil {
		log.Fatal(err)
	}
	dir, err := os.MkdirTemp("", "serving-fleet")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	ckpt := filepath.Join(dir, "model.gob")
	if err := model.Save(ckpt); err != nil {
		log.Fatal(err)
	}

	// Two shard replicas. Each serves its slice of the class rows on
	// both planes: -addr (JSON, for curl and debugging) and -wire-addr
	// (binary frames, for the router's data plane).
	var joins []string
	for i := 0; i < 2; i++ {
		shard, err := newtonadmm.Serve(model, newtonadmm.ServeOptions{
			Addr: "127.0.0.1:0", WireAddr: "127.0.0.1:0",
			ModelPath: ckpt, ShardIndex: i, ShardCount: 2,
		})
		if err != nil {
			log.Fatal(err)
		}
		defer shard.Close()
		fmt.Printf("shard %d/2: JSON on %s, binary frames on %s\n", i, shard.Addr(), shard.WireAddr())
		joins = append(joins, "tcp://"+shard.WireAddr())
	}

	// The router joins the replicas' frame listeners: every scatter leg
	// from here on is binary, while clients still speak JSON to the
	// router itself.
	router, err := newtonadmm.ServeSharded(nil, newtonadmm.RouterOptions{
		Addr: "127.0.0.1:0", Mode: "class", Join: joins,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer router.Close()
	base := "http://" + router.Addr()
	fmt.Printf("router: %s (class-sharded over the binary plane)\n\n", base)

	// One mixed request: a dense row and a sparse row. The merged
	// answer is bitwise identical to single-node scoring — the same
	// property the JSON plane has, at a fraction of the wire cost.
	rng := rand.New(rand.NewSource(7))
	dense := make([]float64, ds.Features())
	for j := range dense {
		dense[j] = rng.NormFloat64()
	}
	resp := postJSON(base+"/v1/predict", map[string]any{"instances": []any{
		dense,
		map[string]any{"indices": []int{3, 10, 200}, "values": []float64{1.5, -2.0, 0.75}},
	}})
	fmt.Printf("predict through the binary-backed router: %s\n", resp)

	single, err := model.Predict([][]float64{dense})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("single-node reference for the dense row:  class %d\n\n", single[0])

	// Drain shard replica 0 (admin surface): class mode has one copy of
	// each shard, so the tier honestly reports itself unavailable
	// rather than serving partial logits — then undrain restores it.
	postJSON(base+"/v1/replicas", map[string]any{"id": 0, "action": "drain"})
	fmt.Printf("drained shard 0 -> healthz: %s\n", getBody(base+"/healthz", http.StatusServiceUnavailable))
	postJSON(base+"/v1/replicas", map[string]any{"id": 0, "action": "undrain"})
	fmt.Printf("undrained shard 0 -> healthz: %s\n\n", getBody(base+"/healthz", http.StatusOK))

	// Hot swap: retrain briefly, rewrite the checkpoint, and reload the
	// whole fleet in one coordinated call. The router holds its swap
	// lock across the rollout, so no scatter merges mixed versions.
	model2, err := newtonadmm.Train(ds, newtonadmm.Options{Epochs: 5, Network: "none", EvalTestAccuracy: false})
	if err != nil {
		log.Fatal(err)
	}
	if err := model2.Save(ckpt); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("coordinated reload: %s\n", postJSON(base+"/v1/reload", nil))
	fmt.Printf("post-swap predict: %s\n", postJSON(base+"/v1/predict", map[string]any{"instances": []any{dense}}))
}

// postJSON posts v (nil for an empty body) and returns the response
// body, failing the example on transport errors.
func postJSON(url string, v any) string {
	var body *bytes.Reader
	if v == nil {
		body = bytes.NewReader(nil)
	} else {
		b, err := json.Marshal(v)
		if err != nil {
			log.Fatal(err)
		}
		body = bytes.NewReader(b)
	}
	resp, err := http.Post(url, "application/json", body)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return buf.String()
}

// getBody fetches url and checks the expected status (healthz uses the
// status code to report tier availability).
func getBody(url string, wantStatus int) string {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		log.Fatalf("%s: status %d, want %d", url, resp.StatusCode, wantStatus)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return buf.String()
}
