// highdim_sparse demonstrates the regime that motivates Hessian-free
// optimization (the paper's E18 experiment): a 20-class problem over
// tens of thousands of sparse features, where the explicit Hessian would
// need terabytes but Hessian-vector products through the CSR matrix keep
// every Newton-ADMM iteration cheap.
package main

import (
	"flag"
	"fmt"
	"log"

	"newtonadmm"
)

func main() {
	scale := flag.Float64("scale", 0.5, "dataset size multiplier")
	ranks := flag.Int("ranks", 8, "simulated cluster size")
	epochs := flag.Int("epochs", 20, "ADMM iterations")
	flag.Parse()

	ds, err := newtonadmm.PresetDataset("e18", *scale)
	if err != nil {
		log.Fatal(err)
	}
	p := ds.Features()
	classes := ds.Classes()
	dim := (classes - 1) * p

	fmt.Printf("E18 analogue: %d train samples, %d sparse features, %d classes\n",
		ds.TrainSize(), p, classes)
	fmt.Printf("optimization dimension d = (C-1)*p = %d\n", dim)
	hessianBytes := float64(dim) * float64(dim) * 8
	fmt.Printf("explicit Hessian would need %.1f TB; Hessian-free CG touches "+
		"only matrix-vector products\n\n", hessianBytes/1e12)

	model, err := newtonadmm.Train(ds, newtonadmm.Options{
		Ranks: *ranks, Epochs: *epochs, Lambda: 1e-5,
		CGIters: 10, CGTol: 1e-4, EvalTestAccuracy: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	first := model.Trace[0]
	last := model.Trace[len(model.Trace)-1]
	fmt.Printf("objective %.4g -> %.4g over %d epochs\n",
		first.Objective, last.Objective, last.Epoch)
	fmt.Printf("test accuracy %.4f (chance = %.4f)\n",
		model.TestAccuracy, 1/float64(classes))
	fmt.Printf("avg epoch time (virtual): %v\n", model.AvgEpochTime)
}
