// slow_network replays the same training job under progressively worse
// interconnects. Newton-ADMM's single gather+scatter per iteration makes
// it nearly immune to network degradation, while GIANT (3 collectives per
// iteration) and synchronous SGD (one per mini-batch) slow down sharply —
// the paper's "amplified by slower interconnects" observation.
package main

import (
	"flag"
	"fmt"
	"log"

	"newtonadmm"
)

func main() {
	scale := flag.Float64("scale", 0.25, "dataset size multiplier")
	ranks := flag.Int("ranks", 8, "simulated cluster size")
	epochs := flag.Int("epochs", 10, "epochs to average over")
	flag.Parse()

	ds, err := newtonadmm.PresetDataset("mnist", *scale)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("MNIST analogue, %d ranks, %d epochs per cell\n\n", *ranks, *epochs)
	fmt.Printf("%-12s  %-14s  %-14s  %-14s\n", "network", "newton-admm", "giant", "sync-sgd")

	for _, network := range []string{"infiniband", "10g", "1g", "wan"} {
		row := fmt.Sprintf("%-12s", network)
		for _, solver := range []string{
			newtonadmm.SolverNewtonADMM, newtonadmm.SolverGIANT, newtonadmm.SolverSyncSGD,
		} {
			model, err := newtonadmm.Train(ds, newtonadmm.Options{
				Solver: solver, Ranks: *ranks, Epochs: *epochs,
				Lambda: 1e-5, Network: network, StepSize: 1,
			})
			if err != nil {
				log.Fatalf("%s on %s: %v", solver, network, err)
			}
			row += fmt.Sprintf("  %-14v", model.AvgEpochTime)
		}
		fmt.Println(row)
	}
	fmt.Println("\ncells are average epoch time (virtual clock: measured compute +")
	fmt.Println("modeled communication); only the network model changes per row")
}
