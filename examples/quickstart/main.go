// Quickstart: generate a synthetic multiclass problem, train Newton-ADMM
// on a simulated 4-node cluster, and evaluate it — the smallest end-to-end
// tour of the public API.
package main

import (
	"fmt"
	"log"

	"newtonadmm"
)

func main() {
	// A 3-class planted-softmax problem: 2000 train / 500 test samples,
	// 20 features.
	ds, err := newtonadmm.GenerateDataset(newtonadmm.DatasetOptions{
		Name: "quickstart", Samples: 2000, TestSamples: 500,
		Features: 20, Classes: 3, Seed: 42, Separation: 3,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset: %d train, %d test, %d features, %d classes\n",
		ds.TrainSize(), ds.TestSize(), ds.Features(), ds.Classes())

	// Train with the paper's defaults: Newton-ADMM, 4 ranks, spectral
	// penalties, 10 CG iterations.
	model, err := newtonadmm.Train(ds, newtonadmm.Options{
		Ranks:            4,
		Epochs:           50,
		Lambda:           1e-4,
		EvalTestAccuracy: true,
	})
	if err != nil {
		log.Fatal(err)
	}

	first := model.Trace[0]
	last := model.Trace[len(model.Trace)-1]
	fmt.Printf("objective: %.4f -> %.4f over %d epochs\n",
		first.Objective, last.Objective, last.Epoch)
	fmt.Printf("test accuracy: %.4f\n", model.TestAccuracy)
	fmt.Printf("avg epoch time (virtual): %v\n", model.AvgEpochTime)

	// Classify a new point.
	point := make([]float64, ds.Features())
	point[0], point[1] = 1.5, -0.5
	pred, err := model.Predict([][]float64{point})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("predicted class for the probe point: %d\n", pred[0])
}
