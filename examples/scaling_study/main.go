// scaling_study sweeps the simulated cluster size under strong scaling
// (fixed total data, shrinking shards) and weak scaling (fixed shard per
// rank, growing data) and prints the average epoch time of Newton-ADMM —
// the experiment design behind the paper's Figure 2, runnable on a laptop.
package main

import (
	"flag"
	"fmt"
	"log"

	"newtonadmm"
)

func main() {
	preset := flag.String("preset", "higgs", "dataset preset: higgs, mnist, cifar, e18")
	scale := flag.Float64("scale", 0.25, "dataset size multiplier")
	epochs := flag.Int("epochs", 10, "epochs to average over")
	network := flag.String("network", "infiniband", "interconnect model")
	flag.Parse()

	rankSweep := []int{1, 2, 4, 8}

	fmt.Printf("strong scaling on %s (fixed total samples)\n", *preset)
	fmt.Println("ranks  avg-epoch  total")
	base, err := newtonadmm.PresetDataset(*preset, *scale)
	if err != nil {
		log.Fatal(err)
	}
	for _, ranks := range rankSweep {
		model, err := newtonadmm.Train(base, newtonadmm.Options{
			Ranks: ranks, Epochs: *epochs, Lambda: 1e-5, Network: *network,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%5d  %9v  %v\n", ranks, model.AvgEpochTime, model.TotalTime)
	}

	fmt.Printf("\nweak scaling on %s (fixed samples per rank)\n", *preset)
	fmt.Println("ranks  samples  avg-epoch  total")
	perRank := base.TrainSize() / rankSweep[len(rankSweep)-1]
	for _, ranks := range rankSweep {
		// Grow the dataset with the rank count so every rank keeps the
		// same shard size.
		ds, err := newtonadmm.GenerateDataset(newtonadmm.DatasetOptions{
			Name:    fmt.Sprintf("%s-w%d", *preset, ranks),
			Samples: perRank * ranks, TestSamples: 0,
			Features: base.Features(), Classes: base.Classes(),
			Seed: 7, Separation: 3,
		})
		if err != nil {
			log.Fatal(err)
		}
		model, err := newtonadmm.Train(ds, newtonadmm.Options{
			Ranks: ranks, Epochs: *epochs, Lambda: 1e-5, Network: *network,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%5d  %7d  %9v  %v\n", ranks, ds.TrainSize(), model.AvgEpochTime, model.TotalTime)
	}
}
