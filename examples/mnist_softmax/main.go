// mnist_softmax compares the paper's two fast second-order solvers —
// Newton-ADMM and GIANT — on the MNIST analogue (10 classes, 784
// features) with the shared hyper-parameters of the paper's Figure 1:
// lambda = 1e-5, 10 CG iterations at 1e-4, 10 line-search iterations.
package main

import (
	"flag"
	"fmt"
	"log"

	"newtonadmm"
)

func main() {
	scale := flag.Float64("scale", 0.5, "dataset size multiplier")
	ranks := flag.Int("ranks", 4, "simulated cluster size")
	epochs := flag.Int("epochs", 40, "iteration budget")
	flag.Parse()

	ds, err := newtonadmm.PresetDataset("mnist", *scale)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("MNIST analogue: %d train / %d test, %d features, %d classes\n\n",
		ds.TrainSize(), ds.TestSize(), ds.Features(), ds.Classes())

	for _, solver := range []string{newtonadmm.SolverNewtonADMM, newtonadmm.SolverGIANT} {
		model, err := newtonadmm.Train(ds, newtonadmm.Options{
			Solver: solver, Ranks: *ranks, Epochs: *epochs,
			Lambda: 1e-5, CGIters: 10, CGTol: 1e-4,
			EvalTestAccuracy: true,
		})
		if err != nil {
			log.Fatalf("%s: %v", solver, err)
		}
		last := model.Trace[len(model.Trace)-1]
		fmt.Printf("%-12s final objective %.6g, test accuracy %.4f, "+
			"avg epoch %v, total %v\n",
			solver, last.Objective, model.TestAccuracy,
			model.AvgEpochTime, model.TotalTime)
		fmt.Printf("%-12s trace (epoch: objective):", "")
		for i := 0; i < len(model.Trace); i += (len(model.Trace)-1)/4 + 1 {
			p := model.Trace[i]
			fmt.Printf("  %d: %.4g", p.Epoch, p.Objective)
		}
		fmt.Printf("\n\n")
	}
}
